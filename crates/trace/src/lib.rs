//! # bard-trace — binary trace capture, replay and ingestion
//!
//! Every workload in the BARD reproduction is synthesized on demand by
//! `bard-workloads`, so until this crate existed a trace lived only
//! transiently in memory. `bard-trace` makes the ChampSim-like
//! [`TraceRecord`](bard_cpu::TraceRecord) stream a first-class, archivable
//! artifact:
//!
//! * **BTF1**, a compact versioned binary container ([`mod@format`]): a
//!   self-describing header (workload, generator provenance, core, seed,
//!   record/instruction counts, FNV-1a checksum) followed by
//!   delta/zigzag/varint-encoded records — no serde, matching the repo's
//!   in-tree-codec convention from `bard::report`.
//! * Streaming [`TraceWriter`] / [`TraceReader`] codecs with O(1) state.
//! * [`ReplayWorkload`], a [`TraceSource`](bard_cpu::TraceSource) that
//!   replays a BTF file bitwise-equivalently to live generation, and
//!   [`RecordingSource`], which tees any live source to disk.
//! * [`TraceStore`], the `(workload, core, seed, budget)`-keyed directory
//!   layout behind the experiment binaries' `--trace-dir=DIR` flag:
//!   record-if-missing, replay-if-present.
//! * A ChampSim-like text importer/exporter ([`import`]) so external traces
//!   become first-class workloads.
//!
//! ## Example
//!
//! ```
//! use bard_cpu::{TraceRecord, TraceSource};
//! use bard_trace::{ReplayWorkload, TraceHeader, TraceReader, TraceWriter};
//!
//! let dir = std::env::temp_dir().join(format!("bard-trace-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("demo.btf");
//!
//! // Record two records...
//! let mut writer = TraceWriter::create(&path, TraceHeader::new("demo", "doctest", 0, 7)).unwrap();
//! writer.write_record(&TraceRecord::load(0x400, 2, 0x1000)).unwrap();
//! writer.write_record(&TraceRecord::store(0x408, 0, 0x1040)).unwrap();
//! let header = writer.finish().unwrap();
//! assert_eq!(header.records, 2);
//!
//! // ...and replay them bitwise-identically.
//! let mut replay = ReplayWorkload::open(&path).unwrap();
//! assert_eq!(replay.next_record(), TraceRecord::load(0x400, 2, 0x1000));
//! assert_eq!(TraceReader::open(&path).unwrap().header().workload, "demo");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod import;
pub mod reader;
pub mod recording;
pub mod replay;
pub mod store;
pub mod writer;

pub use error::TraceError;
pub use format::{Fnv64, TraceHeader, MAGIC, VERSION};
pub use import::{parse_text, render_text};
pub use reader::{verify_file, TraceReader};
pub use recording::RecordingSource;
pub use replay::{ReplayThenLive, ReplayWorkload};
pub use store::{decode_cache_counters, DecodeCacheCounters, TraceStore};
pub use writer::TraceWriter;

#[cfg(test)]
mod tests {
    use std::io::{Cursor, Read, Seek};
    use std::path::PathBuf;

    use bard_cpu::{TraceRecord, TraceSource, VecTrace};

    use super::*;

    /// A scratch directory removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("bard-trace-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        let mut records = Vec::new();
        for i in 0..200u64 {
            records.push(TraceRecord::load(0x400 + i * 8, (i % 7) as u32, 0x10_0000 + i * 64));
            if i % 3 == 0 {
                records.push(TraceRecord::store(0x800 + i * 4, 0, 0x20_0000 + (i % 13) * 4096));
            }
            if i % 5 == 0 {
                records.push(TraceRecord::compute(0xc00, (i % 31) as u32));
            }
        }
        records
    }

    fn encode_to_bytes(records: &[TraceRecord]) -> Vec<u8> {
        let mut cursor = Cursor::new(Vec::new());
        let mut writer =
            TraceWriter::new(&mut cursor, TraceHeader::new("unit", "test", 1, 42)).unwrap();
        for r in records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        cursor.into_inner()
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let records = sample_records();
        let bytes = encode_to_bytes(&records);
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.header().workload, "unit");
        assert_eq!(reader.header().core, 1);
        assert_eq!(reader.header().seed, 42);
        assert_eq!(reader.header().records, records.len() as u64);
        let expected_instructions: u64 = records.iter().map(TraceRecord::instructions).sum();
        assert_eq!(reader.header().instructions, expected_instructions);
        let (_, decoded) = reader.read_all().unwrap();
        assert_eq!(decoded, records, "decode must be the exact inverse of encode");
    }

    #[test]
    fn corrupted_payload_is_rejected_with_a_checksum_error() {
        let records = sample_records();
        let mut bytes = encode_to_bytes(&records);
        // Flip one bit deep inside the payload. The record still decodes
        // (deltas absorb anything), but the checksum catches it.
        let target = bytes.len() - 40;
        bytes[target] ^= 0x40;
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        let err = reader.read_all().unwrap_err();
        match err {
            TraceError::Checksum { expected, actual } => assert_ne!(expected, actual),
            TraceError::Format { .. } => {} // bit flip landed on structure — also rejected
            other => panic!("expected checksum/format rejection, got {other}"),
        }
    }

    #[test]
    fn corrupted_checksum_field_is_rejected() {
        let records = sample_records();
        let mut bytes = encode_to_bytes(&records);
        // The checksum is the last 8 bytes of the header; find it by
        // re-reading the header and patching one byte inside those 8.
        let header = TraceReader::new(Cursor::new(bytes.clone())).unwrap().header().clone();
        let needle = header.checksum.to_le_bytes();
        let pos = bytes.windows(8).position(|w| w == needle).expect("checksum bytes in header");
        bytes[pos] ^= 0xff;
        let err = TraceReader::new(Cursor::new(bytes)).unwrap().read_all().unwrap_err();
        assert!(matches!(err, TraceError::Checksum { .. }), "{err}");
        assert!(err.to_string().contains("corrupted trace file"), "{err}");
    }

    #[test]
    fn corrupted_header_identity_is_rejected() {
        let records = sample_records();
        let mut bytes = encode_to_bytes(&records);
        // Offset 13 is inside the workload-name bytes ("unit"): the file
        // still parses (under a mangled name), but the identity hash breaks.
        bytes[13] ^= 0x02;
        let reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_ne!(reader.header().workload, "unit");
        let err = reader.read_all().unwrap_err();
        assert!(matches!(err, TraceError::Checksum { .. }), "{err}");

        // A corrupted instruction count in the trailer is caught too (the
        // trailer sits outside the hash but is cross-checked).
        let mut bytes = encode_to_bytes(&records);
        let header = TraceReader::new(Cursor::new(bytes.clone())).unwrap().header().clone();
        let needle = header.instructions.to_le_bytes();
        let pos = bytes.windows(8).position(|w| w == needle).expect("instruction bytes");
        bytes[pos] ^= 0x01;
        let err = TraceReader::new(Cursor::new(bytes)).unwrap().read_all().unwrap_err();
        assert!(err.to_string().contains("instructions"), "{err}");
    }

    #[test]
    fn truncated_files_are_rejected() {
        let records = sample_records();
        let bytes = encode_to_bytes(&records);
        let cut = bytes.len() - 11;
        let err =
            TraceReader::new(Cursor::new(bytes[..cut].to_vec())).unwrap().read_all().unwrap_err();
        assert!(matches!(err, TraceError::Format { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        // Truncation inside the header is also a clear error.
        let err = TraceReader::new(Cursor::new(bytes[..10].to_vec())).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let records = sample_records();
        let mut bytes = encode_to_bytes(&records);
        bytes[0] = b'X';
        let err = TraceReader::new(Cursor::new(bytes.clone())).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        bytes[0] = b'B';
        bytes[4] = 9; // version u32 LE
        let err = TraceReader::new(Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, TraceError::Version { found: 9 }), "{err}");
    }

    #[test]
    fn unfinished_writer_leaves_a_rejected_file() {
        let tmp = TempDir::new("unfinished");
        let path = tmp.0.join("partial.btf");
        let mut writer =
            TraceWriter::create(&path, TraceHeader::new("partial", "test", 0, 1)).unwrap();
        writer.write_record(&TraceRecord::load(1, 0, 64)).unwrap();
        drop(writer); // never sealed: header still says 0 records
        let reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.header().records, 0, "placeholder counts survive");
        // Draining "0 records" trips the checksum (payload bytes exist but
        // were never hashed into the header).
        let replay = ReplayWorkload::open(&path);
        assert!(replay.is_err());
        // Opening through the reader and asking for records sees none.
        let err = verify_file(&path);
        assert!(err.is_err() || err.unwrap().records == 0);
    }

    #[test]
    fn replay_matches_source_and_counts_wraps() {
        let records = sample_records();
        let tmp = TempDir::new("replay");
        let path = tmp.0.join("r.btf");
        let mut writer = TraceWriter::create(&path, TraceHeader::new("vec", "test", 0, 0)).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        writer.finish().unwrap();
        let mut replay = ReplayWorkload::open(&path).unwrap();
        assert_eq!(replay.name(), "vec");
        assert_eq!(replay.len(), records.len());
        assert!(!replay.is_empty());
        for r in &records {
            assert_eq!(replay.next_record(), *r);
        }
        assert_eq!(replay.wraps(), 0, "consuming exactly len() records never wraps");
        assert_eq!(replay.next_record(), records[0], "wrap restarts from the first record");
        assert_eq!(replay.wraps(), 1);
    }

    #[test]
    #[should_panic(expected = "exhausted its")]
    fn strict_replay_panics_instead_of_wrapping() {
        let tmp = TempDir::new("strict");
        let path = tmp.0.join("s.btf");
        let mut writer =
            TraceWriter::create(&path, TraceHeader::new("short", "test", 0, 0)).unwrap();
        writer.write_record(&TraceRecord::load(1, 0, 64)).unwrap();
        writer.write_record(&TraceRecord::store(2, 0, 128)).unwrap();
        writer.finish().unwrap();
        let mut replay = ReplayWorkload::open(&path).unwrap().strict();
        let _ = replay.next_record();
        let _ = replay.next_record(); // exactly len() records: fine
        let _ = replay.next_record(); // one past the end: must panic
    }

    #[test]
    fn recording_source_tees_to_disk() {
        let tmp = TempDir::new("recording");
        let path = tmp.0.join("tee.btf");
        let records = vec![
            TraceRecord::load(1, 0, 64),
            TraceRecord::store(2, 3, 128),
            TraceRecord::compute(3, 1),
        ];
        let live = VecTrace::new("tee", records.clone());
        let mut recording = RecordingSource::create(live, &path, "unit-test", 2, 9).unwrap();
        assert_eq!(recording.name(), "tee");
        // Consume five records: the VecTrace loops, the file records the
        // exact consumed stream.
        let mut consumed = Vec::new();
        for _ in 0..5 {
            consumed.push(recording.next_record());
        }
        assert_eq!(recording.records(), 5);
        assert!(format!("{recording:?}").contains("tee"));
        let (header, _inner) = recording.finish().unwrap();
        assert_eq!(header.records, 5);
        assert_eq!(header.core, 2);
        assert_eq!(header.seed, 9);
        let (_, decoded) = TraceReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(decoded, consumed);
    }

    #[test]
    fn store_records_once_and_replays_after() {
        let tmp = TempDir::new("store");
        let store = TraceStore::new(&tmp.0);
        let records = vec![TraceRecord::load(1, 3, 64), TraceRecord::store(2, 1, 128)];
        let make = || -> Box<dyn TraceSource> { Box::new(VecTrace::new("w", records.clone())) };
        let path = store.path_for("w", 0, 5, 20);
        assert!(!path.exists());
        let mut first = store.obtain("w", 0, 5, 20, make).unwrap();
        assert!(path.exists(), "first obtain records the trace");
        // Budget of 20: the 4+2-instruction pair loops until >= 20 (22).
        assert_eq!(first.header().instructions, 22);
        assert_eq!(first.header().records, 7);
        assert_eq!(first.next_record(), records[0]);
        let mut second = store.obtain("w", 0, 5, 20, || panic!("must not regenerate")).unwrap();
        assert_eq!(second.header(), first.header());
        for _ in 0..second.len() {
            let _ = second.next_record();
        }
        assert_eq!(second.wraps(), 0);
        let _ = second.next_record();
        assert_eq!(second.wraps(), 1);
    }

    #[test]
    fn store_reuses_a_larger_archived_budget() {
        let tmp = TempDir::new("store-cover");
        let store = TraceStore::new(&tmp.0);
        let records = vec![TraceRecord::load(1, 3, 64), TraceRecord::store(2, 1, 128)];
        let make = || -> Box<dyn TraceSource> { Box::new(VecTrace::new("w", records.clone())) };
        let big = store.obtain("w", 0, 5, 100, make).unwrap();
        assert_eq!(tmp.0.read_dir().unwrap().count(), 1);
        // A smaller request must reuse the bigger archive, not re-record.
        let small = store.obtain("w", 0, 5, 50, || panic!("covered by the i100 file")).unwrap();
        assert_eq!(small.header(), big.header());
        assert_eq!(tmp.0.read_dir().unwrap().count(), 1, "no duplicate capture");
        // A larger request is not covered and records fresh.
        let records2 = records.clone();
        let bigger =
            store.obtain("w", 0, 5, 200, move || Box::new(VecTrace::new("w", records2))).unwrap();
        assert!(bigger.header().instructions >= 200);
        assert_eq!(tmp.0.read_dir().unwrap().count(), 2);
        // Other keys (different core/seed) never match the scan.
        let records3 = records.clone();
        let other =
            store.obtain("w", 1, 5, 50, move || Box::new(VecTrace::new("w", records3))).unwrap();
        assert_eq!(other.header().core, 1);
        assert_eq!(tmp.0.read_dir().unwrap().count(), 3);
    }

    #[test]
    fn store_rejects_a_key_mismatch() {
        let tmp = TempDir::new("store-mismatch");
        let store = TraceStore::new(&tmp.0);
        let make = || -> Box<dyn TraceSource> {
            Box::new(VecTrace::new("w", vec![TraceRecord::load(1, 0, 64)]))
        };
        let good = store.obtain("w", 0, 5, 10, make).unwrap();
        // Forge a file under a different key by copying the recorded one.
        let forged = store.path_for("other", 1, 6, 10);
        std::fs::copy(store.path_for("w", 0, 5, 10), &forged).unwrap();
        let err =
            store.obtain("other", 1, 6, 10, || panic!("file exists, no regeneration")).unwrap_err();
        assert!(matches!(err, TraceError::Mismatch { .. }), "{err}");
        assert!(err.to_string().contains("requested 'other'"), "{err}");
        drop(good);
    }

    #[test]
    fn store_file_names_are_stable() {
        assert_eq!(
            TraceStore::file_name("lbm", 3, 0x1BAD_B002, 425_000),
            "lbm.c3.s000000001badb002.i425000.btf"
        );
        let store = TraceStore::new("/tmp/x");
        assert_eq!(store.dir(), std::path::Path::new("/tmp/x"));
    }

    #[test]
    fn imported_text_seals_into_a_replayable_file() {
        let tmp = TempDir::new("import");
        let text = "0x400 3 L 0x1000\n0x408 0 S 0x1040\n0x410 5 -\n";
        let records = parse_text(text).unwrap();
        let path = tmp.0.join("ext.btf");
        let mut writer =
            TraceWriter::create(&path, TraceHeader::new("ext", "import:test", 0, 0)).unwrap();
        for r in &records {
            writer.write_record(r).unwrap();
        }
        let header = writer.finish().unwrap();
        assert_eq!(header.records, 3);
        assert_eq!(header.instructions, 11);
        let mut replay = ReplayWorkload::open(&path).unwrap();
        assert_eq!(replay.next_record(), records[0]);
        assert_eq!(render_text(&records), text, "export is the inverse of import");
    }

    #[test]
    fn writer_into_a_plain_cursor_supports_seek_patching() {
        // Exercises the generic (non-file) writer path end to end.
        let mut cursor = Cursor::new(Vec::new());
        let mut writer =
            TraceWriter::new(&mut cursor, TraceHeader::new("cursor", "test", 0, 0)).unwrap();
        for i in 0..10u64 {
            writer.write_record(&TraceRecord::load(i, 0, i * 64)).unwrap();
        }
        let header = writer.finish().unwrap();
        assert_eq!(header.records, 10);
        cursor.rewind().unwrap();
        let mut bytes = Vec::new();
        cursor.read_to_end(&mut bytes).unwrap();
        let (got, decoded) = TraceReader::new(Cursor::new(bytes)).unwrap().read_all().unwrap();
        assert_eq!(got, header);
        assert_eq!(decoded.len(), 10);
    }

    #[test]
    fn writer_drop_without_finish_then_reseal_via_truncate() {
        // Sanity: create() truncates an existing (possibly corrupt) file.
        let tmp = TempDir::new("truncate");
        let path = tmp.0.join("t.btf");
        std::fs::write(&path, b"garbage that is not BTF").unwrap();
        assert!(TraceReader::open(&path).is_err());
        let mut writer = TraceWriter::create(&path, TraceHeader::new("t", "test", 0, 0)).unwrap();
        writer.write_record(&TraceRecord::load(1, 0, 0)).unwrap();
        writer.finish().unwrap();
        assert_eq!(verify_file(&path).unwrap().records, 1);
    }
}
