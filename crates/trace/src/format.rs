//! The BTF1 container format: header layout, varint/zigzag primitives, the
//! per-record delta codec and the FNV-1a checksum.
//!
//! A BTF1 file is a self-describing byte stream:
//!
//! ```text
//! magic      4 bytes   "BTF1"
//! version    u32 LE    container version (currently 1)
//! flags      u32 LE    reserved, must be 0
//! workload   varint length + UTF-8 bytes (paper workload name)
//! source     varint length + UTF-8 bytes (free-form generator provenance)
//! core       u32 LE    core id the trace was captured for
//! seed       u64 LE    base workload-generator seed
//! records    u64 LE    record count           ─┐ fixed-width trailer,
//! instrs     u64 LE    total instructions      ├ patched in place by
//! checksum   u64 LE    FNV-1a, see below     ─┘ `TraceWriter::finish`
//! <records>  delta/zigzag/varint encoded, see below
//! ```
//!
//! Each record is encoded against the previous one:
//!
//! ```text
//! tag        1 byte    0 = compute, 1 = load, 2 = store
//! ip         zigzag varint of ip - prev_ip (wrapping)
//! bubble     zigzag varint of bubble - prev_bubble
//! addr       zigzag varint of addr - prev_addr (loads/stores only)
//! ```
//!
//! Deltas make the common cases (sequential ips, streaming addresses,
//! constant bubbles) one or two bytes each; zigzag keeps small negative
//! deltas small. The checksum covers the header's identity bytes (magic
//! through seed — everything before the patched trailer) plus every encoded
//! record byte, so a flipped bit in the payload *or* in the identity fields
//! is rejected with [`TraceError::Checksum`]; the trailer's own counts are
//! cross-checked against the decoded records.

use bard_cpu::{MemAccess, MemKind, TraceRecord};

use crate::error::TraceError;

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"BTF1";

/// Container version this build writes and reads.
pub const VERSION: u32 = 1;

/// Sanity bound on header string lengths (a corrupt length field would
/// otherwise ask for gigabytes).
pub(crate) const MAX_NAME_BYTES: u64 = 4096;

/// Byte length of the fixed-width header trailer (records, instructions,
/// checksum) that [`TraceWriter::finish`](crate::TraceWriter::finish)
/// patches in place.
pub(crate) const TRAILER_BYTES: u64 = 24;

/// Record tag values.
pub(crate) const TAG_COMPUTE: u8 = 0;
pub(crate) const TAG_LOAD: u8 = 1;
pub(crate) const TAG_STORE: u8 = 2;

/// The self-describing metadata of one BTF1 trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Paper workload name ("lbm", "pagerank", ...; importer-chosen for
    /// external traces).
    pub workload: String,
    /// Free-form provenance of the generator or importer that produced the
    /// records.
    pub source: String,
    /// Core id the trace was captured for.
    pub core: u32,
    /// Base workload-generator seed (0 for imported traces).
    pub seed: u64,
    /// Number of records in the file.
    pub records: u64,
    /// Total instructions represented (sum of `bubble + 1`).
    pub instructions: u64,
    /// FNV-1a 64 checksum of the header identity bytes (everything before
    /// the trailer) plus the encoded record bytes.
    pub checksum: u64,
}

impl TraceHeader {
    /// A header carrying only the identity fields; counts and checksum are
    /// filled in by [`TraceWriter::finish`](crate::TraceWriter::finish).
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        source: impl Into<String>,
        core: u32,
        seed: u64,
    ) -> Self {
        Self {
            workload: workload.into(),
            source: source.into(),
            core,
            seed,
            records: 0,
            instructions: 0,
            checksum: 0,
        }
    }
}

/// Incremental FNV-1a 64-bit hash of the checksummed bytes (header
/// identity fields + encoded records).
///
/// Public because every BTF-style container in the workspace (traces here,
/// snapshot images in `bard`) shares this one checksum implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, ... become 0, 1, 2, 3, ...).
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Delta state threaded through the record codec; encoder and decoder hold
/// mirror copies so they agree byte for byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CodecState {
    prev_ip: u64,
    prev_addr: u64,
    prev_bubble: u32,
}

impl CodecState {
    /// Appends the encoding of `record` to `out` and advances the state.
    pub(crate) fn encode(&mut self, record: &TraceRecord, out: &mut Vec<u8>) {
        let tag = match record.access {
            None => TAG_COMPUTE,
            Some(MemAccess { kind: MemKind::Load, .. }) => TAG_LOAD,
            Some(MemAccess { kind: MemKind::Store, .. }) => TAG_STORE,
        };
        out.push(tag);
        push_varint(out, zigzag(record.ip.wrapping_sub(self.prev_ip) as i64));
        push_varint(out, zigzag(i64::from(record.bubble) - i64::from(self.prev_bubble)));
        self.prev_ip = record.ip;
        self.prev_bubble = record.bubble;
        if let Some(access) = record.access {
            push_varint(out, zigzag(access.addr.wrapping_sub(self.prev_addr) as i64));
            self.prev_addr = access.addr;
        }
    }

    /// Decodes one record from `next` (a byte source) and advances the state.
    ///
    /// `next` is called once per encoded byte; it reports both I/O errors and
    /// end-of-stream as [`TraceError`]s.
    pub(crate) fn decode(
        &mut self,
        next: &mut dyn FnMut() -> Result<(u8, u64), TraceError>,
    ) -> Result<TraceRecord, TraceError> {
        let (tag, tag_offset) = next()?;
        if tag > TAG_STORE {
            return Err(TraceError::Format {
                offset: tag_offset,
                message: format!("invalid record tag {tag}"),
            });
        }
        let ip_delta = unzigzag(read_varint(next)?);
        let bubble_delta = unzigzag(read_varint(next)?);
        self.prev_ip = self.prev_ip.wrapping_add(ip_delta as u64);
        let bubble = i64::from(self.prev_bubble)
            .checked_add(bubble_delta)
            .and_then(|b| u32::try_from(b).ok())
            .ok_or_else(|| TraceError::Format {
                offset: tag_offset,
                message: format!("bubble delta {bubble_delta} leaves the u32 range"),
            })?;
        self.prev_bubble = bubble;
        let access = if tag == TAG_COMPUTE {
            None
        } else {
            let addr_delta = unzigzag(read_varint(next)?);
            self.prev_addr = self.prev_addr.wrapping_add(addr_delta as u64);
            Some(if tag == TAG_LOAD {
                MemAccess::load(self.prev_addr)
            } else {
                MemAccess::store(self.prev_addr)
            })
        };
        Ok(TraceRecord { ip: self.prev_ip, bubble, access })
    }
}

/// Reads an LEB128 varint from a byte source.
pub(crate) fn read_varint(
    next: &mut dyn FnMut() -> Result<(u8, u64), TraceError>,
) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (byte, offset) = next()?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::Format {
                offset,
                message: "varint longer than 64 bits".to_string(),
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Serializes a header (with whatever counts it currently carries) and
/// returns the bytes. The final [`TRAILER_BYTES`] are the fixed-width
/// records/instructions/checksum trailer.
#[must_use]
pub(crate) fn header_bytes(header: &TraceHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags (reserved)
    push_varint(&mut out, header.workload.len() as u64);
    out.extend_from_slice(header.workload.as_bytes());
    push_varint(&mut out, header.source.len() as u64);
    out.extend_from_slice(header.source.as_bytes());
    out.extend_from_slice(&header.core.to_le_bytes());
    out.extend_from_slice(&header.seed.to_le_bytes());
    out.extend_from_slice(&header.records.to_le_bytes());
    out.extend_from_slice(&header.instructions.to_le_bytes());
    out.extend_from_slice(&header.checksum.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    fn drain(bytes: &[u8]) -> impl FnMut() -> Result<(u8, u64), TraceError> + '_ {
        let mut pos = 0usize;
        move || {
            let byte = *bytes.get(pos).ok_or(TraceError::Format {
                offset: pos as u64,
                message: "unexpected end".into(),
            })?;
            pos += 1;
            Ok((byte, pos as u64 - 1))
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX, u64::MAX - 1, 1 << 62] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut next = drain(&buf);
            assert_eq!(read_varint(&mut next).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut next = drain(&buf);
        assert!(matches!(read_varint(&mut next), Err(TraceError::Format { .. })));
    }

    #[test]
    fn codec_round_trips_mixed_records() {
        let records = [
            TraceRecord::compute(0x401000, 3),
            TraceRecord::load(0x401008, 0, 0x7fff_0000),
            TraceRecord::store(0x401010, 9, 0x7fff_0040),
            TraceRecord::load(0, u32::MAX, 0),
            TraceRecord::store(u64::MAX, 0, u64::MAX),
            TraceRecord::compute(5, 0),
        ];
        let mut enc = CodecState::default();
        let mut bytes = Vec::new();
        for r in &records {
            enc.encode(r, &mut bytes);
        }
        let mut dec = CodecState::default();
        let mut next = drain(&bytes);
        for r in &records {
            assert_eq!(dec.decode(&mut next).unwrap(), *r);
        }
        assert_eq!(enc, dec, "encoder and decoder states stay in lock step");
    }

    #[test]
    fn sequential_streams_encode_compactly() {
        // A streaming store pattern: constant ip/bubble deltas, 64-byte
        // address stride — 5 bytes per record (tag + three varints).
        let mut state = CodecState::default();
        let mut bytes = Vec::new();
        let mut warmup = Vec::new();
        state.encode(&TraceRecord::store(0x400, 2, 0x10000), &mut warmup);
        for i in 1..100u64 {
            state.encode(&TraceRecord::store(0x400, 2, 0x10000 + i * 64), &mut bytes);
        }
        assert!(bytes.len() <= 99 * 5, "99 streaming records took {} bytes", bytes.len());
    }

    #[test]
    fn invalid_tag_is_rejected() {
        let mut dec = CodecState::default();
        let bytes = [7u8, 0, 0];
        let mut next = drain(&bytes);
        let err = dec.decode(&mut next).unwrap_err();
        assert!(err.to_string().contains("invalid record tag 7"), "{err}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn header_bytes_end_with_the_fixed_trailer() {
        let mut h = TraceHeader::new("lbm", "unit-test", 3, 0xdead_beef);
        h.records = 7;
        h.instructions = 21;
        h.checksum = 0x0102_0304_0506_0708;
        let bytes = header_bytes(&h);
        let trailer = &bytes[bytes.len() - TRAILER_BYTES as usize..];
        assert_eq!(&trailer[0..8], 7u64.to_le_bytes());
        assert_eq!(&trailer[8..16], 21u64.to_le_bytes());
        assert_eq!(&trailer[16..24], 0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&bytes[0..4], b"BTF1");
    }
}
