//! The workspace-clean gate: all passes over the real workspace must report
//! zero unsuppressed findings and zero unused allows, so the lint and the
//! codebase can never drift apart silently. (The same property gates CI via
//! `cargo run -p bard-lint`; this test keeps it inside `cargo test`.)

use std::path::PathBuf;

use bard_lint::{run_all, Workspace};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crate dir has a workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_findings_and_no_unused_allows() {
    let ws = Workspace::load(&workspace_root()).expect("workspace loads");
    assert!(ws.files.len() > 50, "workspace scan looks truncated: {} files", ws.files.len());
    let report = run_all(&ws);
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "bard-lint found {} finding(s) in the workspace:\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
    assert_eq!(report.allows_unused, 0, "stale allow annotations must be removed");
    assert!(report.allows_used > 0, "the workspace is expected to carry justified allows");
}
