//! T1/U1 fixture: a leaf crate that names telemetry (positive) and is
//! missing `#![forbid(unsafe_code)]` (U1 positive — note the absent
//! attribute).

// The telemetry registry scrapes leaf counters through a probe fn; naming
// bard::telemetry from a leaf is the violation. A comment mentioning
// telemetry (like this one) is a negative.

pub fn leak_counters() -> u64 {
    bard::telemetry::DRAM_TICKS.value() // finding: leaf crate names telemetry
}

pub fn clean_counters() -> u64 {
    7 // scraped via a probe fn-pointer, never by naming the registry
}
