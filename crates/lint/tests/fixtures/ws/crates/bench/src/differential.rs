//! R1 fixture: an incomplete `all_paths` registry.
//!
//! `SchedulerKind` grew an `Extra` variant the cross below never covers, so
//! R1 must report the missing variant AND the size mismatch (4 declared vs
//! a 2 x 3 = 6 cross). `ProbeKind` (normalized in the fixture
//! `full_digest`) is absent from the tuple entirely, and nothing in this
//! fixture crate consumes `all_paths` from a test.

pub enum EngineKind {
    Step,
    Skip,
}

pub enum SchedulerKind {
    Scan,
    Incremental,
    Extra,
}

pub enum ProbeKind {
    Walk,
    Fused,
}

pub fn all_paths() -> [(EngineKind, SchedulerKind); 4] {
    [
        (EngineKind::Step, SchedulerKind::Scan),
        (EngineKind::Step, SchedulerKind::Incremental),
        (EngineKind::Skip, SchedulerKind::Scan),
        (EngineKind::Skip, SchedulerKind::Incremental),
    ]
}
