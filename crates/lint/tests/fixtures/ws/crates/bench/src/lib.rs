//! Bench fixture root: the harness crate is exempt from T1 (it *checks*
//! telemetry), so the read below is a negative.
#![forbid(unsafe_code)]

pub mod differential;

pub fn assert_counters() -> u64 {
    bard::telemetry::DRAM_TICKS.value() // negative: bench is the harness
}
