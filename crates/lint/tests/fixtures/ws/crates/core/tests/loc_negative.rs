//! Location negative: files under `tests/` are test context wholesale, so
//! wall clocks and default-hashed maps here are fine.

use std::collections::HashMap;

#[test]
fn wall_clocks_in_tests_are_fine() {
    let t0 = std::time::Instant::now();
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(1, 2);
    assert!(t0.elapsed().as_secs() < 3600);
}
