//! D1 fixture: determinism positives and tricky negatives.
#![forbid(unsafe_code)]

use std::collections::HashMap; // negative: `use` lines do not execute
use std::collections::HashSet;

pub fn positives() {
    let mut names: HashMap<u64, String> = HashMap::new(); // two findings: type + ctor
    names.insert(1, "x".into());
    let mut seen: HashSet<u64> = HashSet::default(); // two findings: type + ctor
    seen.insert(2);
    let t0 = Instant::now(); // finding: wall clock
    let _ = SystemTime::now(); // finding: wall clock
    let _ = std::env::var("BARD_FIXTURE"); // finding: env read
    let mut acc = 0.0f64;
    acc += 20.5; // finding (warning): float accumulation
    let _ = (t0, acc);
}

pub fn negatives() {
    // HashMap::new() inside a comment is not a finding.
    let s = "HashMap::new() and Instant::now() in a string";
    let r = r#"env::var("X") in a raw string"#;
    let custom: HashMap<u64, u64, std::hash::BuildHasherDefault<FixtureHasher>> =
        HashMap::with_hasher(Default::default()); // negative: explicit hasher
    let sized = HashMap::with_capacity_and_hasher(8, ahash()); // negative: explicit hasher
    let allowed: HashMap<u64, u64> = HashMap::new(); // bard-lint: allow(D1) -- fixture: justified use
    let _ = (s, r, custom, sized, allowed);
}

macro_rules! fixture_macro {
    () => {
        // negative: macro bodies are token soup the lint skips
        HashMap::<u64, u64>::new()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_only_uses_are_fine() {
        let mut m: HashMap<u64, u64> = HashMap::new(); // negative: cfg(test)
        m.insert(1, 2);
        let _ = std::time::Instant::now(); // negative: cfg(test)
    }
}

pub fn stale() {
    let ok = 1; // bard-lint: allow(D1) -- stale: nothing here to suppress (A1 positive)
    // bard-lint: allow(T1)
    let no_justification = 2; // the annotation above is malformed (A2 positive)
    // bard-lint: allow(Q9) -- unknown code (A2 positive)
    let unknown_code = 3;
    let _ = (ok, no_justification, unknown_code);
}
