//! S1/T1 fixture: struct definitions and telemetry usage in a host crate.

/// Encoded by `snapshot.rs::enc_widget`, which forgets `missing_field` —
/// S1 must fire on that field's definition line below.
#[derive(Default)]
pub struct WidgetState {
    pub good: u64,
    pub missing_field: u64,
    // bard-lint: allow(S1) -- fixture: documented-ephemeral field (negative)
    pub ephemeral_ok: u64,
}

/// Own-impl tier: `export_state` covers `kept` but forgets `forgotten`.
pub struct Gadget {
    kept: u64,
    forgotten: u64,
    scratch: Vec<u64>, // bard-lint: allow(S1) -- fixture: scratch buffer (negative)
}

impl Gadget {
    pub fn export_state(&self) -> u64 {
        self.kept
    }
}

/// Marker tier: serialized by `save_marked`, not by an own-impl fn.
// bard-lint: snapshot-state(save_marked)
pub struct MarkedCtx {
    pub saved: u64,
    pub not_saved: u64,
}

pub fn save_marked(ctx: &MarkedCtx) -> u64 {
    ctx.saved
}

pub fn telemetry_usage() {
    crate::telemetry::WIDGET_EVENTS.add(1); // negative: cell write
    crate::telemetry::WIDGET_LATENCY.observe(3); // negative: cell write
    telemetry::trace_instant("fixture"); // negative: sanctioned emit API
    let snooped = crate::telemetry::WIDGET_EVENTS.value(); // finding: cell read
    let report = telemetry::metrics(); // finding: unsanctioned member
    let _ = (snooped, report);
}
