//! S1/R1 fixture: the snapshot codec and the digest-normalization block.
//!
//! `WidgetState` (defined in `model.rs`) is encoded here; the codec forgets
//! `missing_field`, which must fire S1 at the field's definition site.

pub fn enc_widget(out: &mut Vec<u8>, s: &WidgetState) {
    out.extend_from_slice(&s.good.to_le_bytes());
    // s.missing_field is deliberately not written.
}

pub fn dec_widget(buf: &[u8]) -> WidgetState {
    // ..Default::default() silently zero-fills the forgotten field — exactly
    // the bug class S1 exists to catch.
    WidgetState { good: u64::from_le_bytes(buf[..8].try_into().unwrap()), ..Default::default() }
}

/// The digest normalizes `probe` as cosmetic — but `ProbeKind` is not part
/// of the `all_paths` cross in this fixture, so R1 must flag it.
pub fn full_digest(mut c: FixtureConfig) -> u64 {
    c.probe = ProbeKind::Walk;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h ^= c.seed;
    h
}
