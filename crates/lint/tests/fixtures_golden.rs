//! Golden test over the fixture tree: every pass must fire on its seeded
//! violation and stay silent on its tricky negative. The expected findings
//! live in `fixtures/golden_findings.txt`; regenerate with
//! `BARD_BLESS=1 cargo test -p bard-lint --test fixtures_golden`.

use std::fmt::Write as _;
use std::path::PathBuf;

use bard_lint::{run_all, Workspace};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_findings.txt")
}

fn render() -> String {
    let ws = Workspace::load(&fixture_root()).expect("fixture tree loads");
    let report = run_all(&ws);
    let mut out = String::new();
    for f in &report.findings {
        writeln!(out, "{f}").unwrap();
    }
    writeln!(out, "allows_used={}", report.allows_used).unwrap();
    writeln!(out, "allows_unused={}", report.allows_unused).unwrap();
    out
}

#[test]
fn fixture_findings_match_golden() {
    let actual = render();
    if std::env::var_os("BARD_BLESS").is_some() {
        std::fs::write(golden_path(), &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(golden_path()).expect(
        "golden findings file missing; run BARD_BLESS=1 cargo test -p bard-lint --test \
         fixtures_golden",
    );
    assert_eq!(
        actual, expected,
        "fixture findings drifted from the golden file; if the change is intended, \
         re-bless with BARD_BLESS=1"
    );
}

#[test]
fn every_pass_fires_and_every_negative_stays_silent() {
    let ws = Workspace::load(&fixture_root()).expect("fixture tree loads");
    let report = run_all(&ws);
    let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
    // Each pass fires on its seeded violation...
    for code in ["D1", "S1", "T1", "R1", "U1", "A1", "A2"] {
        assert!(codes.contains(&code), "pass {code} never fired; findings: {codes:?}");
    }
    // ...and the tricky negatives stay silent:
    for f in &report.findings {
        // strings/comments/cfg(test)/macro bodies containing HashMap et al.
        assert!(!(f.file.ends_with("loc_negative.rs")), "tests/ file must be exempt: {f}");
        assert!(
            !(f.file.contains("crates/bench/src/lib.rs")),
            "bench harness must be exempt from T1: {f}"
        );
        if f.code == "D1" {
            assert!(
                f.file.ends_with("crates/core/src/lib.rs"),
                "D1 findings only from the D1 fixture: {f}"
            );
        }
    }
    // The negatives file regions: no D1 findings from negatives()'s custom
    // hashers or string/comment mentions (lines 21..=29), nor the macro or
    // cfg(test) blocks (lines 31..=48).
    for f in report.findings.iter().filter(|f| f.code == "D1") {
        assert!(f.line <= 18 || f.line >= 49, "D1 fired inside a negative region: {f}");
    }
    // Allowed-field negatives: no S1 on `ephemeral_ok` or `scratch`.
    for f in report.findings.iter().filter(|f| f.code == "S1") {
        assert!(
            !f.message.contains("ephemeral_ok") && !f.message.contains("`scratch`"),
            "S1 fired on an allow-annotated field: {f}"
        );
    }
}
