//! **R1 — reference-twin registry.** Every fast path in the simulator has a
//! reference twin (step vs skip engine, scan vs incremental scheduler, walk
//! vs fused probe), and the differential suite's `all_paths()` cross is the
//! registry that keeps them honest. This pass pins three facts statically:
//!
//! * every variant of every fast-path enum appears in the `all_paths()`
//!   body, and the cross is complete (`N == product of variant counts`,
//!   with each enum named exactly `N` times) — adding a third `ProbeKind`
//!   variant without extending the cross fails here;
//! * every enum the snapshot digest normalizes as cosmetic (assigned in
//!   `full_digest`'s body — the in-code definition of "this knob must not
//!   change results") is one of the `all_paths()` tuple enums, so a new
//!   fast-path knob cannot be declared cosmetic without differential
//!   coverage;
//! * `all_paths` is actually consumed from test code in the differential
//!   crate — a registry nobody reads pins nothing.

use std::collections::BTreeMap;

use crate::findings::{Finding, Severity};
use crate::items::{EnumDef, FnDef};
use crate::passes::{AnnotationMap, Pass};
use crate::source::Tok;
use crate::workspace::{LintFile, Workspace};

/// The reference-twin-registry pass.
pub struct ReferenceTwinRegistry;

impl Pass for ReferenceTwinRegistry {
    fn code(&self) -> &'static str {
        "R1"
    }

    fn name(&self) -> &'static str {
        "reference-twin-registry"
    }

    fn run(&self, ws: &Workspace, _ann: &AnnotationMap, out: &mut Vec<Finding>) {
        // Enum definitions across the workspace, by name.
        let mut enums: BTreeMap<&str, &EnumDef> = BTreeMap::new();
        for file in &ws.files {
            for def in &file.items.enums {
                enums.entry(def.name.as_str()).or_insert(def);
            }
        }
        let registry = find_registry(ws);
        let path_enums: Vec<String> = match &registry {
            Some((file, fndef)) => {
                check_cross(file, fndef, &enums, out);
                tuple_enums(fndef, &enums)
            }
            None => Vec::new(),
        };
        check_digest_normalization(ws, &enums, &registry, &path_enums, out);
        if let Some((file, _)) = &registry {
            check_consumed(ws, file, out);
        }
    }
}

/// Locates `fn all_paths` in a `differential.rs` source file.
fn find_registry(ws: &Workspace) -> Option<(&LintFile, &FnDef)> {
    for file in &ws.files {
        if !file.rel.ends_with("differential.rs") {
            continue;
        }
        if let Some(f) = file.items.fns.iter().find(|f| f.name == "all_paths") {
            return Some((file, f));
        }
    }
    None
}

/// The workspace enums named in the registry's return-type tuple.
fn tuple_enums(fndef: &FnDef, enums: &BTreeMap<&str, &EnumDef>) -> Vec<String> {
    // The sig reads `fn all_paths() -> [(EngineKind, SchedulerKind,
    // ProbeKind); 8]`; any identifier in it that names a workspace enum is
    // a tuple member.
    sig_idents(&fndef.sig).into_iter().filter(|id| enums.contains_key(id.as_str())).collect()
}

/// Identifier words from a signature string, in order.
fn sig_idents(sig: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in sig.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The declared array length from the registry signature (`; N]`).
fn declared_len(fndef: &FnDef) -> Option<usize> {
    let sig = &fndef.sig;
    let semi = sig.rfind(';')?;
    let rest = sig[semi + 1..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Checks the cross itself: completeness of variants, exact occurrence
/// counts, and `N == product of variant counts`.
fn check_cross(
    file: &LintFile,
    fndef: &FnDef,
    enums: &BTreeMap<&str, &EnumDef>,
    out: &mut Vec<Finding>,
) {
    let members = tuple_enums(fndef, enums);
    if members.is_empty() {
        out.push(Finding {
            code: "R1",
            severity: Severity::Error,
            file: file.rel.clone(),
            line: fndef.line,
            message: "`all_paths` return type names no known fast-path enums; the registry \
                      must cross every fast-path knob"
                .into(),
        });
        return;
    }
    let Some((body_start, body_end)) = fndef.body else { return };
    let Some(declared) = declared_len(fndef) else {
        out.push(Finding {
            code: "R1",
            severity: Severity::Error,
            file: file.rel.clone(),
            line: fndef.line,
            message: "`all_paths` must return a fixed-size array (`[(..); N]`) so the cross \
                      size is part of the signature"
                .into(),
        });
        return;
    };
    let expected: usize = members.iter().map(|m| enums[m.as_str()].variants.len()).product();
    if declared != expected {
        out.push(Finding {
            code: "R1",
            severity: Severity::Error,
            file: file.rel.clone(),
            line: fndef.line,
            message: format!(
                "`all_paths` declares {declared} paths but the full cross of ({}) has \
                 {expected}; a fast-path variant is missing from the registry",
                members.join(" x ")
            ),
        });
    }
    // Scan the body for `Enum::Variant` uses.
    let toks: Vec<_> =
        file.src.tokens.iter().filter(|t| t.line >= body_start && t.line <= body_end).collect();
    for member in &members {
        let def = enums[member.as_str()];
        let mut per_variant: BTreeMap<&str, usize> =
            def.variants.iter().map(|v| (v.as_str(), 0)).collect();
        let mut total = 0usize;
        for (i, t) in toks.iter().enumerate() {
            if !t.tok.is_ident(member) {
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
            {
                total += 1;
                if let Some(Tok::Ident(v)) = toks.get(i + 3).map(|t| &t.tok) {
                    if let Some(n) = per_variant.get_mut(v.as_str()) {
                        *n += 1;
                    }
                }
            }
        }
        for (variant, n) in &per_variant {
            if *n == 0 {
                out.push(Finding {
                    code: "R1",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: fndef.line,
                    message: format!(
                        "fast-path variant `{member}::{variant}` never appears in the \
                         `all_paths` cross; every variant needs differential coverage"
                    ),
                });
            }
        }
        if total != declared {
            out.push(Finding {
                code: "R1",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: fndef.line,
                message: format!(
                    "`{member}` appears {total} times in the `all_paths` body but the cross \
                     declares {declared} paths; every path tuple must pin every knob \
                     explicitly"
                ),
            });
        }
    }
}

/// Every enum assigned in `full_digest`'s body (`c.engine = EngineKind::X`)
/// is cosmetic-by-decree and must be a registry tuple member.
fn check_digest_normalization(
    ws: &Workspace,
    enums: &BTreeMap<&str, &EnumDef>,
    registry: &Option<(&LintFile, &FnDef)>,
    path_enums: &[String],
    out: &mut Vec<Finding>,
) {
    for file in &ws.files {
        if !file.rel.ends_with("src/snapshot.rs") {
            continue;
        }
        let Some(digest) = file.items.fns.iter().find(|f| f.name == "full_digest") else {
            continue;
        };
        let Some((a, b)) = digest.body else { continue };
        let toks: Vec<_> = file.src.tokens.iter().filter(|t| t.line >= a && t.line <= b).collect();
        for (i, t) in toks.iter().enumerate() {
            // Pattern: `= EnumName :: Variant` — an assignment normalizing
            // a cosmetic knob before digesting. Comparisons (`==`, `!=`,
            // `<=`, `>=`) are not assignments.
            if !t.tok.is_punct('=') {
                continue;
            }
            if i > 0
                && matches!(
                    toks[i - 1].tok,
                    Tok::Punct('=' | '!' | '<' | '>' | '+' | '-' | '*' | '/')
                )
            {
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('=')) {
                continue;
            }
            let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else { continue };
            if !enums.contains_key(name.as_str()) {
                continue;
            }
            if !(toks.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.tok.is_punct(':')))
            {
                continue;
            }
            if path_enums.iter().any(|p| p == name) {
                continue;
            }
            let message = if registry.is_some() {
                format!(
                    "`{name}` is normalized as cosmetic in `full_digest` but is not part of \
                     the `all_paths` differential cross; a knob that must not change results \
                     needs reference-twin coverage"
                )
            } else {
                format!(
                    "`{name}` is normalized as cosmetic in `full_digest` but no `all_paths` \
                     registry exists to give it differential coverage"
                )
            };
            out.push(Finding {
                code: "R1",
                severity: Severity::Error,
                file: file.rel.clone(),
                line: toks[i + 1].line,
                message,
            });
        }
    }
}

/// The registry must be consumed from test context in its own crate.
fn check_consumed(ws: &Workspace, registry_file: &LintFile, out: &mut Vec<Finding>) {
    let crate_name = registry_file.crate_name.clone();
    let consumed = ws.files.iter().any(|f| {
        f.crate_name == crate_name
            && f.rel != registry_file.rel
            && f.src
                .tokens
                .iter()
                .any(|t| t.tok.is_ident("all_paths") && (f.file_test || f.src.is_test_line(t.line)))
    });
    if !consumed {
        out.push(Finding {
            code: "R1",
            severity: Severity::Error,
            file: registry_file.rel.clone(),
            line: 1,
            message: "`all_paths` is never consumed from a test in the differential crate; \
                      the registry pins nothing unless the parity suites iterate it"
                .into(),
        });
    }
}
