//! **T1 — telemetry purity.** Telemetry must be write-only from the model:
//! the simulation may bump counters and emit spans, but model behavior must
//! never depend on telemetry state — otherwise the telemetry-on and
//! telemetry-off runs diverge and the parity suite's "bitwise identical
//! with telemetry enabled" guarantee dies.
//!
//! Two scopes:
//!
//! * **Core + root** (where `bard::telemetry` lives): a `telemetry::` path
//!   may call the write/emit API (`CELL.add(..)`, `CELL.observe(..)`,
//!   `trace_span`, `trace_instant`, `flush_phase_nanos`, the enable
//!   setters) and name the vocabulary types (`Phase`, `Progress`). Reading
//!   state back (`.value()`, registry exports) is reporting-only and must
//!   carry `// bard-lint: allow(T1) -- <why this is a report path>`.
//! * **Leaf crates** (`cache`, `cpu`, `dram`, `workloads`, `trace`): the
//!   dependency graph points the other way, so leaf code must not name
//!   `telemetry` at all — leaf counters are scraped through the sanctioned
//!   fn-pointer probes (`decode_cache_counters` et al.) instead.
//!
//! The `bench` crate is the harness that *checks* telemetry and is exempt;
//! `core/src/telemetry.rs` is the subsystem itself and is exempt.

use crate::findings::{Finding, Severity};
use crate::passes::{AnnotationMap, Pass};
use crate::source::Tok;
use crate::workspace::Workspace;

/// Crates that sit below `bard` in the dependency graph and therefore
/// cannot name `bard::telemetry` at all.
const LEAF_CRATES: &[&str] = &["cache", "cpu", "dram", "workloads", "trace"];

/// Sanctioned path segments directly after `telemetry::`: the write/emit
/// fns, the enable switches (write-side), and the vocabulary types.
const WRITE_API: &[&str] = &[
    "trace_span",
    "trace_instant",
    "flush_phase_nanos",
    "set_enabled",
    "set_perf_line_enabled",
    "enabled",
    "perf_line_enabled",
    "Phase",
    "PHASE_COUNT",
    "Progress",
];

/// The telemetry-purity pass.
pub struct TelemetryPurity;

impl Pass for TelemetryPurity {
    fn code(&self) -> &'static str {
        "T1"
    }

    fn name(&self) -> &'static str {
        "telemetry-purity"
    }

    fn run(&self, ws: &Workspace, _ann: &AnnotationMap, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let leaf = LEAF_CRATES.contains(&file.crate_name.as_str());
            let host = file.crate_name == "core" || file.crate_name == "root";
            if !(leaf || host) || file.file_test {
                continue;
            }
            if file.rel.ends_with("src/telemetry.rs") {
                continue; // the subsystem itself
            }
            let toks = &file.src.tokens;
            for (i, t) in toks.iter().enumerate() {
                if !t.tok.is_ident("telemetry") || file.src.is_test_line(t.line) {
                    continue;
                }
                if leaf {
                    out.push(Finding {
                        code: "T1",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: t.line,
                        message: "leaf crate names `telemetry`; leaf counters are scraped via \
                                  the registered fn-pointer probes, never by direct reference"
                            .into(),
                    });
                    continue;
                }
                // Host scope: `telemetry` must be a path segment followed by
                // a sanctioned member. A bare `telemetry` ident (module decl,
                // variable) is fine.
                let is_path = toks.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.tok.is_punct(':'));
                if !is_path {
                    continue;
                }
                let Some(Tok::Ident(member)) = toks.get(i + 3).map(|t| &t.tok) else { continue };
                if WRITE_API.contains(&member.as_str()) {
                    continue;
                }
                if is_screaming_case(member) {
                    // A counter cell: the very next tokens decide write vs
                    // read — `.add(` / `.observe(` are writes, everything
                    // else (`.value()`, passing the cell around) is a read.
                    let method = toks
                        .get(i + 4)
                        .filter(|t| t.tok.is_punct('.'))
                        .and_then(|_| toks.get(i + 5))
                        .and_then(|t| t.tok.ident());
                    if matches!(method, Some("add" | "observe")) {
                        continue;
                    }
                    out.push(Finding {
                        code: "T1",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "telemetry cell `{member}` is read, not written; model code must \
                             not branch on telemetry state (annotate report-only paths with \
                             allow(T1))"
                        ),
                    });
                } else {
                    out.push(Finding {
                        code: "T1",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`telemetry::{member}` is not in the sanctioned write/emit API; \
                             reading telemetry state from model code breaks on/off parity"
                        ),
                    });
                }
            }
        }
    }
}

/// True for SCREAMING_SNAKE_CASE identifiers (counter cell names).
fn is_screaming_case(s: &str) -> bool {
    s.len() > 1
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}
