//! The pass framework: the [`Pass`] trait, the registered pass list, and
//! the driver that runs every pass, applies allow annotations, and reports
//! unused allows.

use std::collections::HashMap as StdHashMap;

use crate::allow::Annotations;
use crate::findings::{Finding, Report, Severity};
use crate::workspace::Workspace;

pub mod d1;
pub mod r1;
pub mod s1;
pub mod t1;
pub mod u1;

/// A lint pass: inspects the workspace and emits findings.
pub trait Pass {
    /// The machine-readable code findings from this pass carry.
    fn code(&self) -> &'static str;
    /// Short human name for `--list` style output.
    fn name(&self) -> &'static str;
    /// Runs the pass, pushing findings (unsuppressed — the driver applies
    /// allow annotations afterwards).
    fn run(&self, ws: &Workspace, ann: &AnnotationMap, out: &mut Vec<Finding>);
}

/// Per-file annotations, keyed by workspace-relative path.
pub type AnnotationMap = StdHashMap<String, Annotations>;

/// The registered pass list, in execution order.
#[must_use]
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(d1::Determinism),
        Box::new(s1::SnapshotCoverage),
        Box::new(t1::TelemetryPurity),
        Box::new(r1::ReferenceTwinRegistry),
        Box::new(u1::ForbidUnsafe),
    ]
}

/// Runs every registered pass over `ws` and folds in the annotation system:
/// suppressed findings are dropped and mark their allow used, malformed
/// annotations become `A2` findings, unused allows become `A1` findings.
#[must_use]
pub fn run_all(ws: &Workspace) -> Report {
    let ann: AnnotationMap =
        ws.files.iter().map(|f| (f.rel.clone(), Annotations::parse(f))).collect();
    let mut raw = Vec::new();
    for pass in all_passes() {
        pass.run(ws, &ann, &mut raw);
    }
    let mut report = Report::default();
    for finding in raw {
        let suppressed =
            ann.get(&finding.file).is_some_and(|a| a.suppresses(finding.code, finding.line));
        if !suppressed {
            report.findings.push(finding);
        }
    }
    // Annotation hygiene: malformed annotations and unused allows.
    let mut rels: Vec<&String> = ann.keys().collect();
    rels.sort();
    for rel in rels {
        let a = &ann[rel];
        report.findings.extend(a.malformed.iter().cloned());
        for allow in &a.allows {
            if allow.used.get() {
                report.allows_used += 1;
            } else {
                report.allows_unused += 1;
                report.findings.push(Finding {
                    code: "A1",
                    severity: Severity::Error,
                    file: rel.clone(),
                    line: allow.line,
                    message: format!(
                        "unused allow({}) — the finding it suppressed is gone; remove the \
                         annotation",
                        allow.codes.join(", ")
                    ),
                });
            }
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    report
}
