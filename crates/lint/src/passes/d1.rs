//! **D1 — determinism.** Model code must be bit-reproducible: no default
//! `RandomState` hashing (iteration order varies per process), no wall
//! clocks, no environment reads, and no order-sensitive float accumulation.
//!
//! Scope: the model crates (`core`, `cpu`, `cache`, `dram`, `workloads`,
//! `trace`) and the root facade, excluding test context, `macro_rules!`
//! bodies, binary drivers (`src/bin/`), `examples/`, and the telemetry
//! subsystem (`src/telemetry.rs`) — CLI drivers legitimately read arguments
//! and wall clocks, and host-side observability is wall-clock measurement
//! by definition; the simulation model must be neither.

use crate::findings::{Finding, Severity};
use crate::passes::{AnnotationMap, Pass};
use crate::source::{SpannedTok, Tok};
use crate::workspace::{LintFile, Workspace};

/// Crates whose non-test code D1 scans.
const MODEL_CRATES: &[&str] = &["core", "cpu", "cache", "dram", "workloads", "trace", "root"];

/// `std::env` accessors that read ambient process state.
const ENV_READS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "current_dir",
    "current_exe",
    "temp_dir",
];

/// The determinism pass.
pub struct Determinism;

impl Pass for Determinism {
    fn code(&self) -> &'static str {
        "D1"
    }

    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, ws: &Workspace, _ann: &AnnotationMap, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !MODEL_CRATES.contains(&file.crate_name.as_str()) || file.file_test {
                continue;
            }
            if file.rel.contains("/bin/") || file.rel.contains("examples/") {
                continue;
            }
            // The telemetry subsystem is host-side observability: wall-clock
            // measurement and env-driven enablement are its function, and the
            // telemetry-on/off parity suite pins it result-neutral.
            if file.rel.ends_with("src/telemetry.rs") {
                continue;
            }
            check_file(file, out);
        }
    }
}

/// True when the token at `line` sits in code D1 skips: test context, a
/// macro body, or a `use` statement (imports do not execute).
fn skipped(file: &LintFile, use_lines: &[bool], line: usize) -> bool {
    file.src.is_test_line(line)
        || file.src.is_macro_line(line)
        || use_lines.get(line - 1).copied().unwrap_or(false)
}

fn check_file(file: &LintFile, out: &mut Vec<Finding>) {
    let toks = &file.src.tokens;
    let use_lines = mark_use_lines(toks, file.src.raw.len());
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if skipped(file, &use_lines, t.line) {
            continue;
        }
        match name.as_str() {
            "HashMap" | "HashSet" => {
                if let Some(msg) = default_hasher_use(toks, i, name) {
                    push(out, file, t.line, msg);
                }
            }
            "Instant" | "SystemTime" => {
                push(
                    out,
                    file,
                    t.line,
                    format!(
                        "`{name}` is a wall clock; model time must come from the simulated \
                         cycle counter"
                    ),
                );
            }
            // `env::var(...)` style reads; `env!(...)` is compile-time and
            // fine.
            "env"
                if toks.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.tok.is_punct(':')) =>
            {
                if let Some(Tok::Ident(call)) = toks.get(i + 3).map(|t| &t.tok) {
                    if ENV_READS.contains(&call.as_str()) {
                        push(
                            out,
                            file,
                            t.line,
                            format!(
                                "`env::{call}` reads ambient process state; model behavior \
                                 must depend only on explicit configuration"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    check_float_accumulation(file, &use_lines, out);
}

/// Decides whether a `HashMap`/`HashSet` token uses the default
/// (randomized) hasher. Returns the finding message, or `None` when a
/// custom hasher is supplied.
fn default_hasher_use(toks: &[SpannedTok], i: usize, name: &str) -> Option<String> {
    let needs = if name == "HashMap" { 3 } else { 2 };
    let mut j = i + 1;
    // Skip a `::` before a turbofish (`HashMap::<u64, V>::new`).
    if toks.get(j).is_some_and(|t| t.tok.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.tok.is_punct('<'))
    {
        j += 2;
    }
    if toks.get(j).is_some_and(|t| t.tok.is_punct('<')) {
        // Count type parameters: top-level commas + 1.
        let mut depth = 0i32;
        let mut params = 1usize;
        loop {
            let t = toks.get(j)?;
            match &t.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct(',') if depth == 1 => params += 1,
                // `->` inside an fn-pointer parameter.
                Tok::Punct('-') if toks.get(j + 1).is_some_and(|t| t.tok.is_punct('>')) => {
                    j += 1;
                }
                _ => {}
            }
            j += 1;
        }
        if params >= needs {
            return None; // hasher parameter supplied
        }
        return Some(format!(
            "`{name}` with the default `RandomState` hasher; use a deterministic hasher \
             (`BuildHasherDefault<...>`) or a `BTreeMap`/`BTreeSet`"
        ));
    }
    if toks.get(j).is_some_and(|t| t.tok.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':'))
    {
        if let Some(Tok::Ident(method)) = toks.get(j + 2).map(|t| &t.tok) {
            if method == "with_hasher" || method == "with_capacity_and_hasher" {
                return None;
            }
        }
        return Some(format!(
            "`{name}` constructed without an explicit hasher; the default `RandomState` \
             randomizes iteration order per process"
        ));
    }
    // A bare mention in a type position (e.g. a type alias target without
    // parameters is impossible, so this is a generic bound or similar):
    // conservative, but flag it so the author decides.
    Some(format!("`{name}` without an explicit hasher parameter"))
}

/// Flags `+=`/`-=`/`*=`/`/=` on lines with float evidence (an `f32`/`f64`
/// token or a float literal). Order-sensitive float accumulation breaks
/// cross-engine parity; the repo models throughput in integers.
fn check_float_accumulation(file: &LintFile, use_lines: &[bool], out: &mut Vec<Finding>) {
    for (idx, line) in file.src.code.iter().enumerate() {
        let line_no = idx + 1;
        if skipped(file, use_lines, line_no) {
            continue;
        }
        let compound = ["+=", "-=", "*=", "/="].iter().any(|op| line.contains(op));
        if !compound {
            continue;
        }
        let float_evidence =
            file.src.tokens.iter().filter(|t| t.line == line_no).any(|t| match &t.tok {
                Tok::Ident(s) => s == "f32" || s == "f64",
                Tok::Num(n) => n.contains('.') || n.ends_with("f32") || n.ends_with("f64"),
                Tok::Punct(_) => false,
            });
        if float_evidence {
            out.push(Finding {
                code: "D1",
                severity: Severity::Warning,
                file: file.rel.clone(),
                line: line_no,
                message: "float accumulation in model code; ordering-sensitive rounding breaks \
                          cross-engine parity — accumulate in integers and convert at the edge"
                    .into(),
            });
        }
    }
}

/// Marks the lines of every `use` statement (`use` ... `;`).
fn mark_use_lines(toks: &[SpannedTok], line_count: usize) -> Vec<bool> {
    let mut marks = vec![false; line_count];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok.is_ident("use") {
            let start = toks[i].line;
            let mut end = start;
            let mut j = i + 1;
            while j < toks.len() {
                end = toks[j].line;
                if toks[j].tok.is_punct(';') {
                    break;
                }
                j += 1;
            }
            for l in start..=end {
                if let Some(slot) = marks.get_mut(l - 1) {
                    *slot = true;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    marks
}

fn push(out: &mut Vec<Finding>, file: &LintFile, line: usize, message: String) {
    out.push(Finding {
        code: "D1",
        severity: Severity::Error,
        file: file.rel.clone(),
        line,
        message,
    });
}
