//! **S1 — snapshot field-coverage.** Every field of a struct that
//! participates in BSS1 snapshot images must be referenced by the code that
//! serializes that struct, or be explicitly annotated ephemeral. This turns
//! "added a field, forgot to export/import it" — the snapshot layer's
//! scariest silent-corruption bug — into a lint error at review time.
//!
//! A struct participates when either:
//!
//! * its name appears in a `src/snapshot.rs` file (the codec names every
//!   image/state type it encodes) — coverage scope is the bodies of the
//!   codec fns whose signatures mention the type (`enc_core_state`,
//!   `dec_core_state`, ...), falling back to the whole codec file; or
//! * its own `impl` block defines a serialization fn (`export_state`,
//!   `import_state`, `capture`, `restore`, `export_image`, ...) — coverage
//!   scope is the union of those fn bodies; or
//! * a `// bard-lint: snapshot-state(fn_a, fn_b)` marker above the struct
//!   names its coverage fns explicitly (for types serialized by a
//!   containing type's fns rather than their own impl).
//!
//! A field missing from its coverage scope needs
//! `// bard-lint: allow(S1) -- <why ephemeral>` on its definition line —
//! the justification doubles as documentation of the rebuild-on-restore
//! story for that field.

use std::collections::BTreeSet;

use crate::findings::{Finding, Severity};
use crate::items::StructDef;
use crate::passes::{AnnotationMap, Pass};
use crate::workspace::{LintFile, Workspace};

/// Serialization fn names whose presence in a struct's impl opts the
/// struct into field-coverage checking.
const COVER_FNS: &[&str] = &[
    "export_state",
    "import_state",
    "export_image",
    "import_image",
    "import_warm_image",
    "capture",
    "capture_warm",
    "restore",
    "restore_warm",
];

/// Types named in the codec but covered by other rules: `System` is checked
/// through its own `capture`/`restore` impl (second bullet), and
/// `SystemConfig` is digest-keyed rather than field-serialized.
const CODEC_DENY: &[&str] = &["System", "SystemConfig"];

/// The snapshot field-coverage pass.
pub struct SnapshotCoverage;

impl Pass for SnapshotCoverage {
    fn code(&self) -> &'static str {
        "S1"
    }

    fn name(&self) -> &'static str {
        "snapshot-coverage"
    }

    fn run(&self, ws: &Workspace, ann: &AnnotationMap, out: &mut Vec<Finding>) {
        let codecs: Vec<&LintFile> =
            ws.files.iter().filter(|f| f.rel.ends_with("src/snapshot.rs")).collect();
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for file in &ws.files {
            if file.file_test {
                continue;
            }
            for def in &file.items.structs {
                if def.test || def.fields.is_empty() {
                    continue;
                }
                // Tier 1: named by a snapshot codec.
                if !CODEC_DENY.contains(&def.name.as_str()) {
                    for codec in &codecs {
                        if let Some(scope) = codec_scope(codec, &def.name) {
                            check_fields(file, def, &scope, "the snapshot codec", out, &mut seen);
                        }
                    }
                }
                // Tier 2: own impl carries a serialization fn.
                let cover: Vec<_> = file
                    .items
                    .fns
                    .iter()
                    .filter(|f| {
                        f.owner.as_deref() == Some(def.name.as_str())
                            && COVER_FNS.contains(&f.name.as_str())
                    })
                    .collect();
                if !cover.is_empty() {
                    let mut scope = String::new();
                    for f in &cover {
                        if let Some((a, b)) = f.body {
                            scope.push_str(&file.src.code_range(a, b));
                        }
                    }
                    let label = format!(
                        "its serialization fns ({})",
                        cover.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ")
                    );
                    check_fields(file, def, &scope, &label, out, &mut seen);
                }
                // Tier 3: explicit snapshot-state marker.
                if let Some(marker) = ann.get(&file.rel).and_then(|a| a.marker_for(def.line)) {
                    let mut scope = String::new();
                    for f in &file.items.fns {
                        if marker.fns.iter().any(|m| m == &f.name) {
                            if let Some((a, b)) = f.body {
                                scope.push_str(&file.src.code_range(a, b));
                            }
                        }
                    }
                    let label = format!("marker fns ({})", marker.fns.join(", "));
                    check_fields(file, def, &scope, &label, out, &mut seen);
                }
            }
        }
    }
}

/// If `name` appears in a codec fn signature (the codec defines an
/// `enc_*`/`dec_*` pair per type it encodes), returns the coverage scope:
/// the union of those fn bodies. A type merely mentioned elsewhere in the
/// file (imports, comments in code position) does not participate — that
/// would drag unrelated types into the check.
fn codec_scope(codec: &LintFile, name: &str) -> Option<String> {
    let mut scope = String::new();
    for f in &codec.items.fns {
        if codec.src.is_test_line(f.line) {
            continue;
        }
        if contains_word(&f.sig, name) {
            if let Some((a, b)) = f.body {
                scope.push_str(&codec.src.code_range(a, b));
                // The signature itself also binds field names in
                // destructuring patterns.
                scope.push_str(&f.sig);
            }
        }
    }
    if scope.is_empty() {
        return None;
    }
    Some(scope)
}

/// Emits a finding for every field of `def` that does not appear as a word
/// in `scope`. `seen` dedupes across tiers (a field may be required by both
/// the codec and an own-impl fn; one finding per field line is enough).
fn check_fields(
    file: &LintFile,
    def: &StructDef,
    scope: &str,
    scope_label: &str,
    out: &mut Vec<Finding>,
    seen: &mut BTreeSet<(String, usize)>,
) {
    for field in &def.fields {
        if contains_word(scope, &field.name) {
            continue;
        }
        if !seen.insert((file.rel.clone(), field.line)) {
            continue;
        }
        out.push(Finding {
            code: "S1",
            severity: Severity::Error,
            file: file.rel.clone(),
            line: field.line,
            message: format!(
                "field `{}` of snapshot-participating struct `{}` is not referenced by \
                 {scope_label}; serialize it or annotate \
                 `// bard-lint: allow(S1) -- <why it is rebuilt on restore>`",
                field.name, def.name
            ),
        });
    }
}

/// True when `word` occurs in `text` with non-identifier characters (or
/// boundaries) on both sides.
fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = text[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let after = at + word.len();
        let after_ok = after >= bytes.len() || {
            let c = bytes[after] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("s.cycle = x", "cycle"));
        assert!(!contains_word("s.cycle_count = x", "cycle"));
        assert!(!contains_word("recycle(s)", "cycle"));
        assert!(contains_word("cycle", "cycle"));
    }
}
