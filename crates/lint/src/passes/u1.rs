//! **U1 — unsafe forbidden.** Every crate root must carry a literal
//! `#![forbid(unsafe_code)]`. The workspace `[lints]` table already forbids
//! unsafe, but the in-source attribute survives being built outside the
//! workspace (vendoring, `cargo publish`, path-dependency checkouts) and
//! states the guarantee where a reader looks first.

use std::collections::BTreeSet;

use crate::findings::{Finding, Severity};
use crate::passes::{AnnotationMap, Pass};
use crate::workspace::Workspace;

/// The forbid-unsafe pass.
pub struct ForbidUnsafe;

impl Pass for ForbidUnsafe {
    fn code(&self) -> &'static str {
        "U1"
    }

    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn run(&self, ws: &Workspace, _ann: &AnnotationMap, out: &mut Vec<Finding>) {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for file in &ws.files {
            let is_root = file.rel == "src/lib.rs"
                || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"));
            if !is_root || !seen.insert(file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.src.tokens;
            let has_forbid = toks.iter().enumerate().any(|(i, t)| {
                t.tok.is_ident("forbid")
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.tok.is_ident("unsafe_code"))
            });
            if !has_forbid {
                out.push(Finding {
                    code: "U1",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: 1,
                    message: format!(
                        "crate `{}` root is missing `#![forbid(unsafe_code)]`; the workspace \
                         lint table forbids unsafe, but the in-source attribute must state it \
                         too",
                        file.crate_name
                    ),
                });
            }
        }
    }
}
