//! The lightweight Rust line model: a token scanner that understands
//! strings, comments, character literals vs lifetimes, `#[cfg(test)]`
//! blocks and `macro_rules!` bodies.
//!
//! `bard-lint` deliberately has no parser dependency (the build is offline,
//! so no `syn`): every pass works on this model instead. Three views of a
//! file are produced:
//!
//! * `code` — the source with comments and string/char contents blanked to
//!   spaces, line structure preserved. All token scanning happens here, so
//!   a `HashMap` inside a string or comment can never trip a lint.
//! * `comments` — only the comment text per line (allow annotations are
//!   parsed from here, so an annotation inside a string is not an
//!   annotation).
//! * `tokens` — identifiers, number literals and punctuation with their
//!   1-based line numbers, lexed from `code`.
//!
//! On top of the views the model marks **test lines** (anything under a
//! `#[cfg(test)]`/`#[test]` item, plus whole files in `tests/` or
//! `benches/` directories) and **macro lines** (`macro_rules!` bodies,
//! which are token soup a lexical lint cannot resolve).

/// One lexed token from the blanked code text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (lexed loosely: digits plus trailing ident/`.`
    /// characters, enough to read array lengths and spot float literals).
    Num(String),
    /// A single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is one.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(t) if t == s)
    }

    /// True when the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// A lexed source file with the per-line views the passes consume.
#[derive(Debug, Clone)]
pub struct SourceText {
    /// Raw source lines.
    pub raw: Vec<String>,
    /// Source lines with comments and string/char contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (everything that was a comment, concatenated).
    pub comments: Vec<String>,
    /// Tokens lexed from `code`.
    pub tokens: Vec<SpannedTok>,
    /// 1-based lines inside `#[cfg(test)]` / `#[test]` items.
    pub test_lines: Vec<bool>,
    /// 1-based lines inside `macro_rules!` bodies.
    pub macro_lines: Vec<bool>,
}

impl SourceText {
    /// Lexes `content` into the full line model. `file_test` marks every
    /// line as test context regardless of attributes (files under `tests/`
    /// or `benches/`).
    #[must_use]
    pub fn lex(content: &str, file_test: bool) -> Self {
        let raw: Vec<String> = content.lines().map(str::to_owned).collect();
        let (code, comments) = blank(content, raw.len());
        let tokens = tokenize(&code);
        let n = raw.len();
        let mut test_lines = vec![file_test; n];
        let mut macro_lines = vec![false; n];
        mark_test_items(&tokens, &mut test_lines);
        mark_macro_bodies(&tokens, &mut macro_lines);
        Self { raw, code, comments, tokens, test_lines, macro_lines }
    }

    /// True when 1-based `line` is test context.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// True when 1-based `line` sits inside a `macro_rules!` body.
    #[must_use]
    pub fn is_macro_line(&self, line: usize) -> bool {
        self.macro_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// The blanked code text of 1-based `line` (empty when out of range).
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        self.code.get(line.wrapping_sub(1)).map_or("", String::as_str)
    }

    /// Concatenated blanked code text of the 1-based inclusive line range.
    #[must_use]
    pub fn code_range(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for line in start..=end.min(self.code.len()) {
            out.push_str(self.code_line(line));
            out.push('\n');
        }
        out
    }
}

/// Lexer state while blanking comments and literals.
enum State {
    /// Ordinary code.
    Normal,
    /// `// ...` to end of line.
    LineComment,
    /// `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// `"..."` with escapes.
    Str,
    /// `r##"..."##` with the given number of hashes.
    RawStr(u32),
    /// `'...'` with escapes.
    Char,
}

/// Blanks comments and string/char contents, returning `(code, comments)`
/// line vectors of exactly `line_count` entries.
fn blank(content: &str, line_count: usize) -> (Vec<String>, Vec<String>) {
    let mut code: Vec<String> = Vec::with_capacity(line_count);
    let mut comments: Vec<String> = Vec::with_capacity(line_count);
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Normal;
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0usize;
    let push_line = |code: &mut Vec<String>,
                     comments: &mut Vec<String>,
                     code_line: &mut String,
                     comment_line: &mut String| {
        code.push(std::mem::take(code_line));
        comments.push(std::mem::take(comment_line));
    };
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; everything else carries
            // its state across.
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            push_line(&mut code, &mut comments, &mut code_line, &mut comment_line);
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment_line.push_str("//");
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    comment_line.push_str("/*");
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code_line.push(' ');
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // Consume the `r`/`br` prefix and hashes up to the
                    // opening quote.
                    let mut j = i;
                    if chars[j] == 'b' {
                        code_line.push(' ');
                        j += 1;
                    }
                    code_line.push(' ');
                    j += 1; // the `r`
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        code_line.push(' ');
                        j += 1;
                    }
                    code_line.push(' '); // the opening quote
                    j += 1;
                    state = State::RawStr(hashes);
                    i = j;
                } else if c == 'b' && next == Some('"') {
                    code_line.push_str("  ");
                    state = State::Str;
                    i += 2;
                } else if c == 'b' && next == Some('\'') {
                    code_line.push_str("  ");
                    state = State::Char;
                    i += 2;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                        code_line.push(' ');
                        i += 1;
                    } else {
                        // A lifetime: keep the tick as code (it is ignored
                        // by the tokenizer's punctuation handling).
                        code_line.push(c);
                        i += 1;
                    }
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    comment_line.push_str("*/");
                    code_line.push_str("  ");
                    i += 2;
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                } else if c == '/' && next == Some('*') {
                    comment_line.push_str("/*");
                    code_line.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comment_line.push(c);
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                    // A `\` at end of line continues the string on the next
                    // line; the newline itself is handled above, so clamp.
                    if i > chars.len() {
                        i = chars.len();
                    } else if chars.get(i - 1) == Some(&'\n') {
                        i -= 1;
                    }
                } else if c == '"' {
                    code_line.push(' ');
                    state = State::Normal;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        code_line.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    code_line.push(' ');
                    state = State::Normal;
                    i += 1;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    push_line(&mut code, &mut comments, &mut code_line, &mut comment_line);
    // `content.lines()` drops a trailing newline's empty line; keep the
    // vectors aligned with `raw`.
    code.truncate(line_count.max(1));
    comments.truncate(line_count.max(1));
    while code.len() < line_count {
        code.push(String::new());
        comments.push(String::new());
    }
    (code, comments)
}

/// True when position `i` starts a raw string literal (`r"`, `r#"`, `br"`,
/// ...), checking that the `r` is not the tail of a longer identifier.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if prev_is_ident {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// True when the quote at `i` closes a raw string with `hashes` hashes.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal (`'a'`, `'\n'`, `'\u{1F600}'`) from a
/// lifetime (`'a`, `'static`) at the `'` in position `i`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Lexes the blanked code lines into spanned tokens.
fn tokenize(code: &[String]) -> Vec<SpannedTok> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: line_no,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `0..10` range syntax: stop a number before `..`.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line: line_no,
                });
            } else if c == '\'' {
                // Lifetime tick: skip it (and let the following identifier
                // lex normally; passes never care about lifetime names).
                i += 1;
            } else {
                out.push(SpannedTok { tok: Tok::Punct(c), line: line_no });
                i += 1;
            }
        }
    }
    out
}

/// Finds `#[cfg(test)]`-style attributes (any `cfg` whose argument mentions
/// `test`, plus bare `#[test]`/`#[bench]`) and marks the attributed item's
/// line range as test context.
fn mark_test_items(tokens: &[SpannedTok], test_lines: &mut [bool]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some((attr_end, is_test)) = parse_attribute(tokens, i) {
            if is_test {
                if let Some(item_end) = skip_attributed_item(tokens, attr_end) {
                    let start_line = tokens[i].line;
                    let end_line = tokens[item_end.min(tokens.len() - 1)].line;
                    for l in start_line..=end_line {
                        if let Some(slot) = test_lines.get_mut(l - 1) {
                            *slot = true;
                        }
                    }
                    i = item_end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
}

/// If `i` starts an attribute (`#[...]` or `#![...]`), returns the index of
/// its closing `]` and whether it is a test attribute.
fn parse_attribute(tokens: &[SpannedTok], i: usize) -> Option<(usize, bool)> {
    if !tokens[i].tok.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.tok.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.tok.is_punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    let mut is_cfg = false;
    let mut mentions_test = false;
    let mut first_ident: Option<&str> = None;
    for (k, t) in tokens.iter().enumerate().skip(j) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let bare_test = matches!(first_ident, Some("test" | "bench"));
                    return Some((k, (is_cfg && mentions_test) || bare_test));
                }
            }
            Tok::Ident(s) => {
                if first_ident.is_none() {
                    first_ident = Some(s);
                    if s == "cfg" {
                        is_cfg = true;
                    }
                }
                if s == "test" {
                    mentions_test = true;
                }
            }
            _ => {}
        }
    }
    None
}

/// Skips the item that follows an attribute ending at `attr_end`: further
/// attributes, then either a braced body (matched) or a `;`-terminated
/// item. Returns the index of the item's last token.
fn skip_attributed_item(tokens: &[SpannedTok], attr_end: usize) -> Option<usize> {
    let mut i = attr_end + 1;
    // Skip any further attributes stacked on the same item.
    while i < tokens.len() {
        if let Some((end, _)) = parse_attribute(tokens, i) {
            i = end + 1;
        } else {
            break;
        }
    }
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(i) {
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            Tok::Punct(';') if depth == 0 => return Some(k),
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            _ => {}
        }
    }
    None
}

/// Marks `macro_rules! name { ... }` bodies.
fn mark_macro_bodies(tokens: &[SpannedTok], macro_lines: &mut [bool]) {
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].tok.is_ident("macro_rules") && tokens[i + 1].tok.is_punct('!') {
            // name, then a delimited body.
            let mut j = i + 2;
            if tokens.get(j).and_then(|t| t.tok.ident()).is_some() {
                j += 1;
            }
            let mut depth = 0i32;
            let start_line = tokens[i].line;
            for (k, t) in tokens.iter().enumerate().skip(j) {
                match &t.tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            for l in start_line..=tokens[k].line {
                                if let Some(slot) = macro_lines.get_mut(l - 1) {
                                    *slot = true;
                                }
                            }
                            i = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap::new()\"; // HashMap here\nlet y = 1;\n";
        let s = SourceText::lex(src, false);
        assert!(!s.code[0].contains("HashMap"));
        assert!(s.comments[0].contains("HashMap here"));
        assert!(s.code[1].contains("let y"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let x = r#\"Instant::now()\"#;\nInstant::now();\n";
        let s = SourceText::lex(src, false);
        assert!(!s.code[0].contains("Instant"));
        assert!(s.code[1].contains("Instant"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let s = SourceText::lex(src, false);
        assert!(s.code[0].contains("str"));
        assert!(!s.code[0].contains("'x'"));
        let idents: Vec<_> =
            s.tokens.iter().filter_map(|t| t.tok.ident()).map(str::to_owned).collect();
        assert!(idents.contains(&"a".to_owned()));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let s = SourceText::lex(src, false);
        assert!(s.code[0].contains("let z"));
        assert!(!s.code[0].contains("inner"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let s = SourceText::lex(src, false);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_attr_does_not_mark_test() {
        let src = "#[cfg_attr(test, derive(Debug))]\nstruct S { x: u64 }\n";
        let s = SourceText::lex(src, false);
        // cfg_attr's first ident is `cfg_attr`, not `cfg`: not test context.
        assert!(!s.is_test_line(2));
    }

    #[test]
    fn test_attribute_marks_following_fn() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn live() {}\n";
        let s = SourceText::lex(src, false);
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(!s.is_test_line(5));
    }

    #[test]
    fn macro_rules_bodies_are_marked() {
        let src = "macro_rules! m {\n    () => { HashMap::new() };\n}\nfn live() {}\n";
        let s = SourceText::lex(src, false);
        assert!(s.is_macro_line(2));
        assert!(!s.is_macro_line(4));
    }

    #[test]
    fn numbers_lex_with_float_evidence() {
        let src = "let x = 20.5; let r = 0..10;\n";
        let s = SourceText::lex(src, false);
        let nums: Vec<_> = s
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert!(nums.contains(&"20.5".to_owned()));
        assert!(nums.contains(&"0".to_owned()));
        assert!(nums.contains(&"10".to_owned()));
    }
}
