//! Workspace discovery: walks the repository for Rust sources, lexes each
//! file and scans its items, and records which crate it belongs to and
//! whether it is test-context by location (`tests/`, `benches/`).

use std::path::{Path, PathBuf};

use crate::items::{self, Items};
use crate::source::SourceText;

/// One lexed + scanned source file.
#[derive(Debug)]
pub struct LintFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Owning crate name (`core`, `cache`, ... or `root` for the facade).
    pub crate_name: String,
    /// True when the whole file is test context by location.
    pub file_test: bool,
    /// The lexed line model.
    pub src: SourceText,
    /// The scanned item model.
    pub items: Items,
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All scanned files, sorted by relative path.
    pub files: Vec<LintFile>,
}

impl Workspace {
    /// Loads every workspace-member Rust source under `root`.
    ///
    /// Members are `crates/<name>` plus the root facade package (`src/`,
    /// `tests/`, `examples/`, `benches/`). `crates/lint` itself, `vendor/`
    /// and `target/` are excluded — the lint does not lint itself or
    /// vendored third-party code.
    ///
    /// # Errors
    /// Returns an error when the directory walk or a file read fails.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut paths: Vec<(PathBuf, String)> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name == "lint" || !entry.path().is_dir() {
                    continue;
                }
                collect_rs(&entry.path(), &mut paths, &name)?;
            }
        }
        for sub in ["src", "tests", "examples", "benches"] {
            let dir = root.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut paths, "root")?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for (path, crate_name) in paths {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let file_test = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
            let content = std::fs::read_to_string(&path)?;
            let src = SourceText::lex(&content, file_test);
            let items = items::scan(&src);
            files.push(LintFile { rel, crate_name, file_test, src, items });
        }
        Ok(Self { root: root.to_path_buf(), files })
    }

    /// Builds a workspace from in-memory `(rel_path, content)` pairs — the
    /// fixture tests use this to lint synthetic trees. Crate names derive
    /// from `crates/<name>/...` prefixes, everything else is `root`.
    #[must_use]
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        let mut files: Vec<LintFile> = sources
            .iter()
            .map(|(rel, content)| {
                let crate_name = rel
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("root")
                    .to_owned();
                let file_test = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
                let src = SourceText::lex(content, file_test);
                let items = items::scan(&src);
                LintFile { rel: (*rel).to_owned(), crate_name, file_test, src, items }
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Self { root: PathBuf::from("."), files }
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `target` and
/// fixture directories (fixtures are deliberately-bad code).
fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, String)>,
    crate_name: &str,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out, crate_name)?;
        } else if name.ends_with(".rs") {
            out.push((path, crate_name.to_owned()));
        }
    }
    Ok(())
}
