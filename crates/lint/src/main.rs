//! The `bard-lint` binary: runs every pass over the workspace and reports.
//!
//! ```text
//! cargo run -p bard-lint --release -- --workspace [--json] [--root=DIR]
//! ```
//!
//! Exit status: `0` clean, `1` error-severity findings, `2` usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use bard_lint::{run_all, Workspace};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => {} // the only analysis unit; accepted for clarity
            "--json" => json = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            a if a.starts_with("--root=") => {
                root = Some(PathBuf::from(&a["--root=".len()..]));
            }
            other => {
                eprintln!("bard-lint: unknown argument `{other}`");
                print_help();
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "bard-lint: no workspace root found (no ancestor Cargo.toml with \
                 `[workspace]`); pass --root=DIR"
            );
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("bard-lint: failed to load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = run_all(&ws);
    if json {
        print!("{}", report.to_json(&root.display().to_string()));
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        let errors = report.error_count();
        let warnings = report.findings.len() - errors;
        println!(
            "bard-lint: {} files, {errors} error(s), {warnings} warning(s), {} allow(s) in \
             effect",
            ws.files.len(),
            report.allows_used
        );
    }
    if report.error_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first `Cargo.toml` containing
/// a `[workspace]` table.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_help() {
    println!(
        "bard-lint: in-tree static analysis (determinism, snapshot coverage, telemetry \
         purity, reference-twin registry)\n\
         \n\
         USAGE: bard-lint [--workspace] [--json] [--root=DIR]\n\
         \n\
         --workspace   lint the whole workspace (the default and only unit)\n\
         --json        emit the machine-readable report (archived by CI)\n\
         --root=DIR    workspace root (default: nearest ancestor with [workspace])\n\
         \n\
         Exit status: 0 clean, 1 findings, 2 usage error.\n\
         Suppress a finding with `// bard-lint: allow(<code>) -- <justification>`;\n\
         see docs/LINTS.md for every code."
    );
}
