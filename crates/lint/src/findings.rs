//! Findings: the machine-readable output of a pass, with text and JSON
//! rendering. JSON is written with an in-tree serializer (the workspace has
//! no serde) matching the repo's other hand-rolled JSON emitters.

use std::fmt;

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but does not fail the run.
    Warning,
    /// Violation: fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from one pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Machine-readable code (`D1`, `S1`, `T1`, `R1`, `U1`, `A1`, `A2`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity, self.code, self.file, self.line, self.message
        )
    }
}

/// The complete result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in pass order then file/line order.
    pub findings: Vec<Finding>,
    /// Number of allow annotations that suppressed at least one finding.
    pub allows_used: usize,
    /// Number of allow annotations that suppressed nothing (also reported
    /// as `A1` findings).
    pub allows_unused: usize,
}

impl Report {
    /// Number of error-severity findings (the exit-status driver).
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Renders the report as the stable JSON document archived by CI.
    #[must_use]
    pub fn to_json(&self, root: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"tool\": \"bard-lint\",\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(root)));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": {}, ", json_str(f.code)));
            out.push_str(&format!("\"severity\": {}, ", json_str(&f.severity.to_string())));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"metrics\": {\n");
        out.push_str(&format!("    \"lint.findings\": {},\n", self.findings.len()));
        out.push_str(&format!("    \"lint.errors\": {},\n", self.error_count()));
        out.push_str(&format!("    \"lint.allows\": {},\n", self.allows_used));
        out.push_str(&format!("    \"lint.unused_allows\": {}\n", self.allows_unused));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report::default();
        report.findings.push(Finding {
            code: "D1",
            severity: Severity::Error,
            file: "crates/core/src/a.rs".into(),
            line: 3,
            message: "say \"hi\"".into(),
        });
        report.allows_used = 2;
        let json = report.to_json("/root/repo");
        assert!(json.contains("\"lint.findings\": 1"));
        assert!(json.contains("\"lint.allows\": 2"));
        assert!(json.contains("\\\"hi\\\""));
        assert_eq!(report.error_count(), 1);
    }
}
