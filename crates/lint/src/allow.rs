//! The allow-annotation system.
//!
//! A finding is suppressed by writing, on the same line or the line above:
//!
//! ```text
//! // bard-lint: allow(D1) -- justification text here
//! ```
//!
//! The justification (`-- ...`) is mandatory; an allow without one is an
//! `A2` finding. Multiple codes may be listed: `allow(D1, T1)`. Each allow
//! covers exactly one code line: its own line when it trails code, else the
//! next non-blank code line. Allows that suppress nothing are `A1`
//! findings, so stale annotations rot loudly.
//!
//! A second annotation form marks a struct as snapshot state for the S1
//! pass even when its impl block carries no serialization fn itself:
//!
//! ```text
//! // bard-lint: snapshot-state(export_image, import_image)
//! ```
//!
//! placed on the line above the struct definition, naming the coverage fns
//! (in the same file) whose bodies serialize the fields.

use std::cell::Cell;

use crate::findings::{Finding, Severity};
use crate::workspace::LintFile;

/// The set of valid lint codes an allow may name.
pub const CODES: &[&str] = &["D1", "S1", "T1", "R1", "U1"];

/// One parsed allow annotation.
#[derive(Debug)]
pub struct Allow {
    /// Codes this allow suppresses.
    pub codes: Vec<String>,
    /// 1-based line the annotation text sits on.
    pub line: usize,
    /// 1-based code line the annotation covers.
    pub covers: usize,
    /// True once the allow has suppressed at least one finding.
    pub used: Cell<bool>,
}

/// A `snapshot-state(...)` marker naming the coverage fns for a struct
/// defined on the next code line.
#[derive(Debug)]
pub struct SnapshotMarker {
    /// Coverage fn names.
    pub fns: Vec<String>,
    /// 1-based code line the marker covers (the struct definition line).
    pub covers: usize,
}

/// All annotations parsed from one file.
#[derive(Debug, Default)]
pub struct Annotations {
    /// Allow annotations.
    pub allows: Vec<Allow>,
    /// Snapshot-state markers.
    pub markers: Vec<SnapshotMarker>,
    /// Malformed annotations, reported as `A2`.
    pub malformed: Vec<Finding>,
}

impl Annotations {
    /// Parses every `bard-lint:` annotation in `file`.
    #[must_use]
    pub fn parse(file: &LintFile) -> Self {
        let mut out = Self::default();
        for (idx, comment) in file.src.comments.iter().enumerate() {
            let line = idx + 1;
            let Some(pos) = comment.find("bard-lint:") else { continue };
            let body = comment[pos + "bard-lint:".len()..].trim();
            if let Some(rest) = body.strip_prefix("allow") {
                match parse_allow(rest) {
                    Ok(codes) => {
                        let covers = covered_line(file, line);
                        out.allows.push(Allow { codes, line, covers, used: Cell::new(false) });
                    }
                    Err(msg) => out.malformed.push(Finding {
                        code: "A2",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line,
                        message: msg,
                    }),
                }
            } else if let Some(rest) = body.strip_prefix("snapshot-state") {
                match parse_paren_list(rest) {
                    Some((names, _)) if !names.is_empty() => {
                        let covers = covered_line(file, line);
                        out.markers.push(SnapshotMarker { fns: names, covers });
                    }
                    _ => out.malformed.push(Finding {
                        code: "A2",
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line,
                        message: "malformed snapshot-state marker: expected \
                                  `snapshot-state(fn_a, fn_b)`"
                            .into(),
                    }),
                }
            } else {
                out.malformed.push(Finding {
                    code: "A2",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line,
                    message: format!(
                        "unrecognized bard-lint annotation `{}`: expected \
                         `allow(<code>) -- <justification>` or `snapshot-state(...)`",
                        body.chars().take(40).collect::<String>()
                    ),
                });
            }
        }
        out
    }

    /// True when a finding with `code` at `line` is suppressed; marks the
    /// matching allow as used.
    pub fn suppresses(&self, code: &str, line: usize) -> bool {
        let mut hit = false;
        for allow in &self.allows {
            if allow.covers == line && allow.codes.iter().any(|c| c == code) {
                allow.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// The snapshot-state marker covering `line`, if any.
    #[must_use]
    pub fn marker_for(&self, line: usize) -> Option<&SnapshotMarker> {
        self.markers.iter().find(|m| m.covers == line)
    }
}

/// The code line an annotation on `line` covers: its own line when it has
/// code, else the next line that has code (skipping blank/comment-only and
/// attribute lines, so an allow can sit above `#[derive(...)]`).
fn covered_line(file: &LintFile, line: usize) -> usize {
    let has_code = |l: usize| !file.src.code_line(l).trim().is_empty();
    let is_attr = |l: usize| file.src.code_line(l).trim_start().starts_with('#');
    if has_code(line) {
        return line;
    }
    let mut l = line + 1;
    while l <= file.src.raw.len() {
        if has_code(l) && !is_attr(l) {
            return l;
        }
        l += 1;
    }
    line
}

/// Parses `(CODE[, CODE]) -- justification` after the `allow` keyword.
fn parse_allow(rest: &str) -> Result<Vec<String>, String> {
    let Some((codes, after)) = parse_paren_list(rest) else {
        return Err("malformed allow: expected `allow(<code>) -- <justification>`".into());
    };
    if codes.is_empty() {
        return Err("allow lists no codes".into());
    }
    for code in &codes {
        if !CODES.contains(&code.as_str()) {
            return Err(format!("allow names unknown code `{code}` (valid: {})", CODES.join(", ")));
        }
    }
    let after = after.trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Err("allow is missing its `-- <justification>`".into());
    };
    if justification.trim().is_empty() {
        return Err("allow has an empty justification".into());
    }
    Ok(codes)
}

/// Parses a leading `(a, b, c)` list, returning the items and the text that
/// follows the closing paren.
fn parse_paren_list(rest: &str) -> Option<(Vec<String>, &str)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let items = inner[..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    Some((items, &inner[close + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;

    fn file(content: &str) -> Workspace {
        Workspace::from_sources(&[("crates/core/src/x.rs", content)])
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let ws =
            file("use x;\nlet m = HashMap::new(); // bard-lint: allow(D1) -- never iterated\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert_eq!(ann.allows.len(), 1);
        assert_eq!(ann.allows[0].covers, 2);
        assert!(ann.suppresses("D1", 2));
        assert!(!ann.suppresses("T1", 2));
        assert!(ann.allows[0].used.get());
    }

    #[test]
    fn own_line_allow_covers_next_code_line() {
        let ws = file("// bard-lint: allow(S1) -- rebuilt on restore\n\n#[allow(dead_code)]\npub scratch: Vec<u64>,\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert_eq!(ann.allows[0].covers, 4);
    }

    #[test]
    fn missing_justification_is_malformed() {
        let ws = file("// bard-lint: allow(D1)\nlet x = 1;\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert!(ann.allows.is_empty());
        assert_eq!(ann.malformed.len(), 1);
        assert!(ann.malformed[0].message.contains("justification"));
    }

    #[test]
    fn unknown_code_is_malformed() {
        let ws = file("// bard-lint: allow(Z9) -- nope\nlet x = 1;\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert_eq!(ann.malformed.len(), 1);
        assert!(ann.malformed[0].message.contains("Z9"));
    }

    #[test]
    fn multi_code_allow() {
        let ws = file("do_thing(); // bard-lint: allow(D1, T1) -- report path only\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert!(ann.suppresses("D1", 1));
        assert!(ann.suppresses("T1", 1));
    }

    #[test]
    fn snapshot_marker_parses() {
        let ws = file("// bard-lint: snapshot-state(export_image, import_image)\npub struct CoreCtx {\n    pub a: u64,\n}\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert_eq!(ann.markers.len(), 1);
        assert_eq!(ann.markers[0].covers, 2);
        assert_eq!(ann.markers[0].fns, vec!["export_image", "import_image"]);
    }

    #[test]
    fn annotation_inside_string_is_not_an_annotation() {
        let ws = file("let s = \"// bard-lint: allow(D1) -- fake\";\n");
        let ann = Annotations::parse(&ws.files[0]);
        assert!(ann.allows.is_empty());
        assert!(ann.malformed.is_empty());
    }
}
