//! `bard-lint` — in-tree static analysis for the BARD reproduction.
//!
//! The repo's value proposition is bitwise reproducibility across engines,
//! schedulers, probes, snapshots and replays. The dynamic parity suites
//! check that on the inputs they run; these passes enforce the underlying
//! source-level invariants on *every* line:
//!
//! | code | pass | invariant |
//! |------|------|-----------|
//! | `D1` | determinism | no randomized hashing, wall clocks, env reads or float accumulation in model code |
//! | `S1` | snapshot-coverage | every field of a snapshot-participating struct is serialized or annotated ephemeral |
//! | `T1` | telemetry-purity | telemetry is write-only from the model; leaf crates use fn-pointer probes |
//! | `R1` | reference-twin-registry | every fast-path enum variant is crossed in `all_paths()` |
//! | `U1` | forbid-unsafe | every crate root carries `#![forbid(unsafe_code)]` |
//! | `A1` | (driver) | allow annotation that suppresses nothing |
//! | `A2` | (driver) | malformed annotation (unknown code, missing justification) |
//!
//! Findings are suppressed line-by-line with
//! `// bard-lint: allow(<code>) -- <justification>`; see `docs/LINTS.md`.
//!
//! The crate has no dependencies: a hand-rolled lexer ([`source`]) and item
//! scanner ([`items`]) stand in for a real parser, which is exactly enough
//! for lexical invariants and keeps the tool building offline.

#![forbid(unsafe_code)]

pub mod allow;
pub mod findings;
pub mod items;
pub mod passes;
pub mod source;
pub mod workspace;

pub use findings::{Finding, Report, Severity};
pub use passes::run_all;
pub use workspace::Workspace;
