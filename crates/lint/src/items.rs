//! A shallow item scanner on top of the token stream: struct definitions
//! with their named fields, enum definitions with their variants, and
//! function definitions with signature/body line ranges plus the `impl`
//! owner type. This is all the structure the passes need — no expression
//! parsing, no type resolution.

use crate::source::{SourceText, SpannedTok, Tok};

/// A named struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based definition line.
    pub line: usize,
}

/// A `struct` definition with named fields (tuple/unit structs scan as
/// field-less and are ignored by the snapshot pass).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// True when the definition sits in test context.
    pub test: bool,
}

/// An `enum` definition with its variant names.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature text (blanked code from `fn` to the body `{`).
    pub sig: String,
    /// 1-based inclusive body line range; `None` for bodiless trait fns.
    pub body: Option<(usize, usize)>,
    /// The `impl` target type name when the fn lives in an impl block.
    pub owner: Option<String>,
}

/// All items scanned from one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Function definitions.
    pub fns: Vec<FnDef>,
}

/// Scans `src` into its item model.
#[must_use]
pub fn scan(src: &SourceText) -> Items {
    let toks = &src.tokens;
    let mut items = Items::default();
    // Stack of (brace depth at entry, owner type) for impl blocks.
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if let Some((d, _)) = impl_stack.last() {
                    if depth == *d {
                        impl_stack.pop();
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" => {
                if let Some((owner, body_start)) = parse_impl_header(toks, i) {
                    impl_stack.push((depth, owner));
                    depth += 1;
                    i = body_start + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                if let Some((def, next)) = parse_struct(src, toks, i) {
                    items.structs.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "enum" => {
                if let Some((def, next)) = parse_enum(toks, i) {
                    items.enums.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let owner = impl_stack.last().map(|(_, o)| o.clone());
                if let Some((mut def, next, entered_body)) = parse_fn(src, toks, i) {
                    def.owner = owner;
                    items.fns.push(def);
                    if entered_body {
                        depth += 1;
                    }
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    items
}

/// Parses an `impl` header starting at the `impl` keyword. Returns the
/// target type name and the index of the opening `{`.
///
/// The target is the last plain identifier at generic depth 0 before the
/// body brace, taken after `for` when present — which resolves both
/// `impl Foo`, `impl<T> Foo<T>` and `impl Trait for Foo`.
fn parse_impl_header(toks: &[SpannedTok], i: usize) -> Option<(String, usize)> {
    let mut gdepth = 0i32;
    let mut target: Option<String> = None;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => gdepth += 1,
            Tok::Punct('>') => gdepth -= 1,
            Tok::Punct('{') if gdepth <= 0 => return target.map(|t| (t, j)),
            Tok::Punct(';') if gdepth <= 0 => return None,
            Tok::Ident(s) if gdepth <= 0 => {
                if s == "for" {
                    target = None;
                } else if s != "where" && s != "dyn" && s != "mut" && s != "const" {
                    target = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a struct definition at the `struct` keyword. Returns the def and
/// the token index just past it.
fn parse_struct(src: &SourceText, toks: &[SpannedTok], i: usize) -> Option<(StructDef, usize)> {
    let name = toks.get(i + 1)?.tok.ident()?.to_owned();
    let line = toks[i].line;
    let test = src.is_test_line(line);
    // Skip generics, then expect `{` (named fields), `(`/`;` (tuple/unit:
    // no named fields, nothing for S1 to check).
    let mut j = i + 2;
    let mut gdepth = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => gdepth += 1,
            Tok::Punct('>') => gdepth -= 1,
            Tok::Punct('{') if gdepth <= 0 => break,
            Tok::Punct('(') | Tok::Punct(';') if gdepth <= 0 => {
                return Some((StructDef { name, line, fields: Vec::new(), test }, j + 1));
            }
            Tok::Ident(s) if gdepth <= 0 && s == "where" => {}
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    // Walk the braced field list: at brace depth 1, an identifier followed
    // by `:` that starts a field position is a field name. Field positions
    // are: right after `{`, or right after a depth-1 `,`. Attributes
    // (`#[...]`) and visibility (`pub`, `pub(crate)`) are skipped.
    let mut fields = Vec::new();
    let mut bdepth = 0i32;
    let mut at_field_start = false;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => {
                bdepth += 1;
                if bdepth == 1 {
                    at_field_start = true;
                }
                j += 1;
            }
            Tok::Punct('}') => {
                bdepth -= 1;
                if bdepth == 0 {
                    return Some((StructDef { name, line, fields, test }, j + 1));
                }
                j += 1;
            }
            Tok::Punct(',') if bdepth == 1 => {
                at_field_start = true;
                j += 1;
            }
            Tok::Punct('#') if bdepth == 1 && at_field_start => {
                // Skip an attribute on the field.
                let mut adepth = 0i32;
                j += 1;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('[') => adepth += 1,
                        Tok::Punct(']') => {
                            adepth -= 1;
                            if adepth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Tok::Ident(s) if bdepth == 1 && at_field_start => {
                if s == "pub" {
                    // Visibility, possibly `pub(crate)`.
                    j += 1;
                    if toks.get(j).is_some_and(|t| t.tok.is_punct('(')) {
                        let mut pdepth = 0i32;
                        while j < toks.len() {
                            match &toks[j].tok {
                                Tok::Punct('(') => pdepth += 1,
                                Tok::Punct(')') => {
                                    pdepth -= 1;
                                    if pdepth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                } else if toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':')) {
                    fields.push(FieldDef { name: s.clone(), line: toks[j].line });
                    at_field_start = false;
                    j += 2;
                } else {
                    at_field_start = false;
                    j += 1;
                }
            }
            _ => {
                if bdepth >= 1 && !matches!(&toks[j].tok, Tok::Punct(',')) {
                    // Inside a field's type expression.
                }
                j += 1;
            }
        }
    }
    None
}

/// Parses an enum definition at the `enum` keyword.
fn parse_enum(toks: &[SpannedTok], i: usize) -> Option<(EnumDef, usize)> {
    let name = toks.get(i + 1)?.tok.ident()?.to_owned();
    let line = toks[i].line;
    let mut j = i + 2;
    let mut gdepth = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => gdepth += 1,
            Tok::Punct('>') => gdepth -= 1,
            Tok::Punct('{') if gdepth <= 0 => break,
            Tok::Punct(';') if gdepth <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    // Variants: at brace depth 1, an identifier in variant-start position.
    let mut variants = Vec::new();
    let mut bdepth = 0i32;
    let mut at_variant_start = false;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') | Tok::Punct('(') => {
                bdepth += 1;
                if bdepth == 1 {
                    at_variant_start = true;
                }
                j += 1;
            }
            Tok::Punct('}') | Tok::Punct(')') => {
                bdepth -= 1;
                if bdepth == 0 {
                    return Some((EnumDef { name, line, variants }, j + 1));
                }
                j += 1;
            }
            Tok::Punct(',') if bdepth == 1 => {
                at_variant_start = true;
                j += 1;
            }
            Tok::Punct('#') if bdepth == 1 && at_variant_start => {
                let mut adepth = 0i32;
                j += 1;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('[') => adepth += 1,
                        Tok::Punct(']') => {
                            adepth -= 1;
                            if adepth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Tok::Ident(s) if bdepth == 1 && at_variant_start => {
                variants.push(s.clone());
                at_variant_start = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    None
}

/// Parses a fn definition at the `fn` keyword. Returns the def, the token
/// index to continue from, and whether scanning continues *inside* the body
/// (so the caller keeps its brace-depth bookkeeping consistent — we do not
/// skip bodies, because nested items and impl-owner tracking rely on the
/// caller's single pass).
fn parse_fn(src: &SourceText, toks: &[SpannedTok], i: usize) -> Option<(FnDef, usize, bool)> {
    let name = toks.get(i + 1)?.tok.ident()?.to_owned();
    let line = toks[i].line;
    // Find the body `{` or a `;` at generic/paren depth 0.
    let mut gdepth = 0i32;
    let mut pdepth = 0i32;
    let mut j = i + 2;
    let body_open = loop {
        let t = toks.get(j)?;
        match &t.tok {
            Tok::Punct('<') => gdepth += 1,
            Tok::Punct('>') => gdepth -= 1,
            Tok::Punct('(') | Tok::Punct('[') => pdepth += 1,
            Tok::Punct(')') | Tok::Punct(']') => pdepth -= 1,
            // `->` return arrow: the `>` must not count as a generic close.
            Tok::Punct('-') if toks.get(j + 1).is_some_and(|t| t.tok.is_punct('>')) => {
                j += 1;
            }
            Tok::Punct('{') if gdepth <= 0 && pdepth == 0 => break Some(j),
            Tok::Punct(';') if gdepth <= 0 && pdepth == 0 => break None,
            _ => {}
        }
        j += 1;
    };
    let (sig_end_line, body, next, entered) = match body_open {
        Some(open) => {
            // Find the matching close brace to record the body line range;
            // scanning continues just inside the body.
            let mut depth = 0i32;
            let mut k = open;
            let close = loop {
                match toks.get(k).map(|t| &t.tok) {
                    Some(Tok::Punct('{')) => depth += 1,
                    Some(Tok::Punct('}')) => {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    None => break k.saturating_sub(1),
                    _ => {}
                }
                k += 1;
            };
            let body_range = (toks[open].line, toks.get(close).map_or(toks[open].line, |t| t.line));
            (toks[open].line, Some(body_range), open + 1, true)
        }
        None => (toks[j].line, None, j + 1, false),
    };
    let sig = src.code_range(line, sig_end_line);
    Some((FnDef { name, line, sig, body, owner: None }, next, entered))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str) -> Items {
        scan(&SourceText::lex(src, false))
    }

    #[test]
    fn struct_fields_are_scanned() {
        let items = scan_src(
            "pub struct Foo {\n    pub a: u64,\n    #[allow(dead_code)]\n    b: Vec<(u32, u32)>,\n    pub(crate) c: HashMap<u64, Vec<u8>>,\n}\n",
        );
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "Foo");
        let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let items = scan_src("struct A(u64, u64);\nstruct B;\nstruct C { x: u8 }\n");
        assert_eq!(items.structs.len(), 3);
        assert!(items.structs[0].fields.is_empty());
        assert!(items.structs[1].fields.is_empty());
        assert_eq!(items.structs[2].fields.len(), 1);
    }

    #[test]
    fn enum_variants_are_scanned() {
        let items = scan_src(
            "pub enum Kind {\n    #[default]\n    Walk,\n    Fused(u64),\n    Other { x: u8 },\n}\n",
        );
        assert_eq!(items.enums.len(), 1);
        assert_eq!(items.enums[0].variants, vec!["Walk", "Fused", "Other"]);
    }

    #[test]
    fn impl_owner_is_tracked() {
        let items = scan_src(
            "impl Foo {\n    fn a(&self) {}\n}\nimpl Display for Bar {\n    fn fmt(&self) { nested(); }\n}\nfn free() {}\nimpl<T: Clone> Baz<T> {\n    fn c() {}\n}\n",
        );
        let owners: Vec<_> =
            items.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            owners,
            vec![("a", Some("Foo")), ("fmt", Some("Bar")), ("free", None), ("c", Some("Baz")),]
        );
    }

    #[test]
    fn fn_body_ranges_cover_the_braces() {
        let src = "fn f(x: u64) -> u64 {\n    let y = x + 1;\n    y\n}\n";
        let items = scan_src(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].body, Some((1, 4)));
        assert!(items.fns[0].sig.contains("x: u64"));
    }

    #[test]
    fn nested_fns_and_closures_do_not_break_owner_tracking() {
        let items = scan_src(
            "impl Outer {\n    fn a(&self) {\n        fn inner() {}\n        let c = |x: u64| x + 1;\n    }\n    fn b(&self) {}\n}\n",
        );
        let owners: Vec<_> =
            items.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(
            owners,
            vec![("a", Some("Outer")), ("inner", Some("Outer")), ("b", Some("Outer"))]
        );
    }

    #[test]
    fn trait_fn_without_body() {
        let items = scan_src("trait T {\n    fn required(&self) -> u64;\n}\n");
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].body.is_none());
    }

    #[test]
    fn return_arrow_generics_do_not_confuse_the_scanner() {
        let items = scan_src("fn g<T>() -> Vec<T> {\n    Vec::new()\n}\nfn h() {}\n");
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h"]);
    }
}
