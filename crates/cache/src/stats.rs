//! Per-cache statistics.

/// Counters kept by every cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand load lookups.
    pub loads: u64,
    /// Demand load hits.
    pub load_hits: u64,
    /// Demand store lookups.
    pub stores: u64,
    /// Demand store hits.
    pub stores_hits: u64,
    /// Write-back lookups arriving from an inner level.
    pub writeback_accesses: u64,
    /// Lines filled into the cache.
    pub fills: u64,
    /// Evictions of clean lines.
    pub clean_evictions: u64,
    /// Evictions of dirty lines (each produces a write-back to the next level).
    pub dirty_evictions: u64,
    /// Proactive cleanses: dirty lines written back without eviction
    /// (BARD-C, Eager Writeback, Virtual Write Queue).
    pub cleanses: u64,
    /// Prefetch fills.
    pub prefetch_fills: u64,
    /// Demand hits on lines originally brought in by a prefetch.
    pub prefetch_useful: u64,
}

impl CacheStats {
    /// Total demand accesses (loads + stores).
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total demand hits.
    #[must_use]
    pub fn demand_hits(&self) -> u64 {
        self.load_hits + self.stores_hits
    }

    /// Total demand misses.
    #[must_use]
    pub fn demand_misses(&self) -> u64 {
        self.demand_accesses() - self.demand_hits()
    }

    /// Demand miss ratio in [0, 1]; 0 when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses() == 0 {
            0.0
        } else {
            self.demand_misses() as f64 / self.demand_accesses() as f64
        }
    }

    /// Total write-backs produced by this cache (dirty evictions + cleanses).
    #[must_use]
    pub fn writebacks_produced(&self) -> u64 {
        self.dirty_evictions + self.cleanses
    }

    /// Merges another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.loads += other.loads;
        self.load_hits += other.load_hits;
        self.stores += other.stores;
        self.stores_hits += other.stores_hits;
        self.writeback_accesses += other.writeback_accesses;
        self.fills += other.fills;
        self.clean_evictions += other.clean_evictions;
        self.dirty_evictions += other.dirty_evictions;
        self.cleanses += other.cleanses;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_useful += other.prefetch_useful;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn aggregates_are_consistent() {
        let s = CacheStats {
            loads: 100,
            load_hits: 80,
            stores: 50,
            stores_hits: 40,
            dirty_evictions: 10,
            cleanses: 5,
            ..Default::default()
        };
        assert_eq!(s.demand_accesses(), 150);
        assert_eq!(s.demand_misses(), 30);
        assert!((s.miss_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(s.writebacks_produced(), 15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats { loads: 1, load_hits: 1, ..Default::default() };
        let b = CacheStats { loads: 2, stores: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.stores, 3);
        assert_eq!(a.demand_hits(), 1);
    }
}
