//! Hardware prefetchers.
//!
//! The paper's baseline uses Berti at L1D and SPP at L2. Those designs are
//! substituted here by an IP-stride prefetcher (L1D) and a streaming
//! next-line prefetcher (L2): they produce a comparable amount of useful and
//! useless LLC traffic, which is all the BARD mechanism is sensitive to. The
//! substitution is recorded in DESIGN.md.

/// A hardware prefetcher observing demand accesses and proposing prefetch
/// addresses.
pub trait Prefetcher: std::fmt::Debug + Send {
    /// Called on every demand access. `addr` is the byte address, `ip` the
    /// instruction pointer, `hit` whether the access hit this cache level.
    /// Returns line-aligned addresses to prefetch.
    fn on_access(&mut self, addr: u64, ip: u64, hit: bool, out: &mut Vec<u64>);

    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;
}

/// A prefetcher that never prefetches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_access(&mut self, _addr: u64, _ip: u64, _hit: bool, _out: &mut Vec<u64>) {}

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Per-IP stride prefetcher: learns the stride between successive accesses of
/// the same instruction and prefetches `degree` lines ahead once confident.
#[derive(Debug, Clone)]
pub struct IpStridePrefetcher {
    table_entries: usize,
    line_bytes: u64, // bard-lint: allow(S1) -- config parameter fixed at construction
    degree: usize,   // bard-lint: allow(S1) -- config parameter fixed at construction
    entries: Vec<StrideEntry>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StrideEntry {
    ip_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Plain-data image of one stride-table entry (snapshot support).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideEntryState {
    /// Full instruction pointer tagged into this slot.
    pub ip_tag: u64,
    /// Last byte address observed for the tagged IP.
    pub last_addr: u64,
    /// Learned stride in bytes (signed).
    pub stride: i64,
    /// Saturating confidence counter (0..=3).
    pub confidence: u8,
}

/// Plain-data image of an [`IpStridePrefetcher`] table (snapshot support).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideTableState {
    /// One entry per direct-mapped table slot, in slot order.
    pub entries: Vec<StrideEntryState>,
}

impl IpStridePrefetcher {
    /// Creates a prefetcher with a direct-mapped table of `table_entries`
    /// (power of two), prefetching `degree` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two or `degree` is zero.
    #[must_use]
    pub fn new(table_entries: usize, line_bytes: u64, degree: usize) -> Self {
        assert!(table_entries.is_power_of_two());
        assert!(degree > 0);
        Self {
            table_entries,
            line_bytes,
            degree,
            entries: vec![StrideEntry::default(); table_entries],
        }
    }

    fn index(&self, ip: u64) -> usize {
        (ip as usize ^ (ip >> 12) as usize) & (self.table_entries - 1)
    }

    /// Exports the stride table (snapshot support).
    #[must_use]
    pub fn export_state(&self) -> StrideTableState {
        StrideTableState {
            entries: self
                .entries
                .iter()
                .map(|e| StrideEntryState {
                    ip_tag: e.ip_tag,
                    last_addr: e.last_addr,
                    stride: e.stride,
                    confidence: e.confidence,
                })
                .collect(),
        }
    }

    /// Replaces the stride table with `state` (snapshot support).
    ///
    /// # Panics
    ///
    /// Panics when the image was taken from a table of a different size —
    /// restores are gated by snapshot digests, so a mismatch is a
    /// programming error.
    pub fn import_state(&mut self, state: &StrideTableState) {
        assert_eq!(state.entries.len(), self.table_entries, "stride table geometry mismatch");
        for (slot, e) in self.entries.iter_mut().zip(&state.entries) {
            *slot = StrideEntry {
                ip_tag: e.ip_tag,
                last_addr: e.last_addr,
                stride: e.stride,
                confidence: e.confidence,
            };
        }
    }
}

impl Prefetcher for IpStridePrefetcher {
    fn on_access(&mut self, addr: u64, ip: u64, _hit: bool, out: &mut Vec<u64>) {
        let idx = self.index(ip);
        let line_bytes = self.line_bytes;
        let degree = self.degree;
        let entry = &mut self.entries[idx];
        if entry.ip_tag != ip {
            *entry = StrideEntry { ip_tag: ip, last_addr: addr, stride: 0, confidence: 0 };
            return;
        }
        let stride = addr as i64 - entry.last_addr as i64;
        entry.last_addr = addr;
        if stride == 0 {
            return;
        }
        if stride == entry.stride {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        if entry.confidence >= 2 {
            for d in 1..=degree {
                let target = addr as i64 + stride * d as i64;
                if target > 0 {
                    out.push(target as u64 & !(line_bytes - 1));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "ip-stride"
    }
}

/// Streaming next-line prefetcher: on a miss, prefetches the next `degree`
/// sequential lines.
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    line_bytes: u64,
    degree: usize,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher of the given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[must_use]
    pub fn new(line_bytes: u64, degree: usize) -> Self {
        assert!(degree > 0);
        Self { line_bytes, degree }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn on_access(&mut self, addr: u64, _ip: u64, hit: bool, out: &mut Vec<u64>) {
        if hit {
            return;
        }
        let line = addr & !(self.line_bytes - 1);
        for d in 1..=self.degree {
            out.push(line + self.line_bytes * d as u64);
        }
    }

    fn name(&self) -> &'static str {
        "next-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetcher_emits_nothing() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        p.on_access(0x1000, 0x400, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ip_stride_learns_a_constant_stride() {
        let mut p = IpStridePrefetcher::new(256, 64, 2);
        let ip = 0x4008;
        let mut out = Vec::new();
        for i in 0..8u64 {
            out.clear();
            p.on_access(0x1_0000 + i * 256, ip, false, &mut out);
        }
        assert_eq!(out.len(), 2);
        // Last access was at 0x1_0000 + 7*256; prefetches are +256 and +512.
        assert_eq!(out[0], 0x1_0000 + 8 * 256);
        assert_eq!(out[1], 0x1_0000 + 9 * 256);
    }

    #[test]
    fn ip_stride_does_not_prefetch_random_patterns() {
        let mut p = IpStridePrefetcher::new(256, 64, 2);
        let ip = 0x4008;
        let mut out = Vec::new();
        let addrs = [0x1000u64, 0x9340, 0x2280, 0x77c0, 0x1140];
        for a in addrs {
            p.on_access(a, ip, false, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn ip_stride_separates_different_ips() {
        let mut p = IpStridePrefetcher::new(256, 64, 1);
        let mut out = Vec::new();
        // Interleave two IPs with different strides; both should train.
        for i in 0..8u64 {
            p.on_access(0x10_000 + i * 64, 0x104, false, &mut out);
            p.on_access(0x80_000 + i * 4096, 0x208, false, &mut out);
        }
        assert!(out.iter().any(|&a| a > 0x80_000), "second stream should prefetch");
        assert!(out.iter().any(|&a| a < 0x80_000), "first stream should prefetch");
    }

    #[test]
    fn stride_state_round_trips_and_preserves_training() {
        let mut p = IpStridePrefetcher::new(64, 64, 2);
        let ip = 0x4008;
        let mut out = Vec::new();
        for i in 0..6u64 {
            p.on_access(0x1_0000 + i * 256, ip, false, &mut out);
        }
        let state = p.export_state();

        let mut fresh = IpStridePrefetcher::new(64, 64, 2);
        fresh.import_state(&state);
        assert_eq!(fresh.export_state(), state);

        // The restored table must prefetch exactly like the trained one.
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.on_access(0x1_0000 + 6 * 256, ip, false, &mut a);
        fresh.on_access(0x1_0000 + 6 * 256, ip, false, &mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "stride table geometry mismatch")]
    fn stride_state_rejects_wrong_table_size() {
        let p = IpStridePrefetcher::new(64, 64, 2);
        let state = p.export_state();
        let mut other = IpStridePrefetcher::new(128, 64, 2);
        other.import_state(&state);
    }

    #[test]
    fn next_line_prefetches_on_miss_only() {
        let mut p = NextLinePrefetcher::new(64, 2);
        let mut out = Vec::new();
        p.on_access(0x1004, 0, true, &mut out);
        assert!(out.is_empty());
        p.on_access(0x1004, 0, false, &mut out);
        assert_eq!(out, vec![0x1040, 0x1080]);
    }
}
