//! Cache line metadata.

/// Metadata for one cache line (the data payload is not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLine {
    /// Line-aligned physical address.
    pub addr: u64,
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Whether the line has been written since it was filled (must be written
    /// back to the next level on eviction).
    pub dirty: bool,
    /// Whether the line was brought in by a prefetch and not yet demanded.
    pub prefetched: bool,
    /// Truncated signature of the instruction that caused the fill (used by
    /// SHiP-style replacement).
    pub signature: u16,
}

impl CacheLine {
    /// An invalid line.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A valid line for `addr`.
    #[must_use]
    pub fn filled(addr: u64, dirty: bool, signature: u16) -> Self {
        Self { addr, valid: true, dirty, prefetched: false, signature }
    }
}

/// A line removed from the cache by an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned physical address of the victim.
    pub addr: u64,
    /// True if the victim was dirty and needs a write-back.
    pub dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_line_is_invalid() {
        let l = CacheLine::empty();
        assert!(!l.valid);
        assert!(!l.dirty);
    }

    #[test]
    fn filled_line_carries_state() {
        let l = CacheLine::filled(0x40, true, 7);
        assert!(l.valid);
        assert!(l.dirty);
        assert_eq!(l.addr, 0x40);
        assert_eq!(l.signature, 7);
    }
}
