//! Miss-status holding registers (MSHRs) with request merging.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for the line-address keys (Fx/wyhash-style). The MSHR
/// map sits on the simulator's hottest path — every demand miss, coalesce,
/// back-pressure re-check and completion hashes a line address — and the
/// standard SipHash costs several times the surrounding work. Line addresses
/// are already well-distributed in their middle bits; one multiply by a
/// random-odd constant and a high-bit fold is plenty. Determinism is
/// unconditional (no per-process seed), and no simulator code depends on map
/// iteration order (results are byte-identical across processes even under
/// `RandomState`, which randomizes per instance).
#[derive(Debug, Clone, Copy, Default)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // Fold the high bits down: the multiply concentrates entropy there,
        // and HashMap consumes the low bits.
        self.0 ^ (self.0 >> 32)
    }
}

/// The map type keyed by line address.
type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// Error returned when an MSHR cannot be allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrError {
    /// All MSHR entries are in use; the requester must stall.
    Full,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full => write!(f, "all MSHR entries are in use"),
        }
    }
}

impl std::error::Error for MshrError {}

/// One outstanding miss.
#[derive(Debug, Clone, Default)]
struct MshrEntry {
    /// Opaque waiter tokens (for example ROB indices) merged onto this miss.
    waiters: Vec<u64>,
    /// Whether any of the merged requests is a demand write (the fill must be
    /// installed dirty).
    write_requested: bool,
    /// Whether the entry was created by a prefetch and no demand has merged
    /// into it yet.
    prefetch_only: bool,
}

/// Plain-data image of one outstanding miss (snapshot support).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrEntryState {
    /// Line address the miss targets.
    pub line: u64,
    /// Waiter tokens in merge order.
    pub waiters: Vec<u64>,
    /// Whether any merged request is a demand write.
    pub write_requested: bool,
    /// Whether the entry is still prefetch-only.
    pub prefetch_only: bool,
}

/// Plain-data image of an MSHR file (snapshot support). Entries are sorted
/// by line address so the image is canonical regardless of map iteration
/// order (no simulator code depends on that order; see [`LineHasher`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrState {
    /// Outstanding misses, sorted by line address.
    pub entries: Vec<MshrEntryState>,
    /// Highest simultaneous occupancy observed.
    pub peak_occupancy: u64,
    /// Requests merged into already-outstanding misses.
    pub merges: u64,
}

/// A file of MSHRs keyed by line address.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: LineMap<MshrEntry>,
    peak_occupancy: usize,
    merges: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: LineMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
            peak_occupancy: 0,
            merges: 0,
        }
    }

    /// Capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outstanding misses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no miss is outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no more misses can be tracked.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Highest simultaneous occupancy observed.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of requests merged into already-outstanding misses.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// True if a miss to `line_addr` is already outstanding.
    #[must_use]
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Registers a miss to `line_addr`.
    ///
    /// Returns `Ok(true)` if a new entry was allocated (the caller must send
    /// the request down the hierarchy) and `Ok(false)` if the request was
    /// merged into an existing entry.
    ///
    /// # Errors
    ///
    /// Returns [`MshrError::Full`] if a new entry is needed but the file is
    /// full.
    pub fn allocate(
        &mut self,
        line_addr: u64,
        waiter: u64,
        is_write: bool,
        is_prefetch: bool,
    ) -> Result<bool, MshrError> {
        if let Some(entry) = self.entries.get_mut(&line_addr) {
            entry.waiters.push(waiter);
            entry.write_requested |= is_write;
            if !is_prefetch {
                entry.prefetch_only = false;
            }
            self.merges += 1;
            return Ok(false);
        }
        if self.is_full() {
            return Err(MshrError::Full);
        }
        self.entries.insert(
            line_addr,
            MshrEntry {
                waiters: vec![waiter],
                write_requested: is_write,
                prefetch_only: is_prefetch,
            },
        );
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Ok(true)
    }

    /// Exports the file's state, entries sorted by line address (snapshot
    /// support).
    #[must_use]
    pub fn export_state(&self) -> MshrState {
        let mut entries: Vec<MshrEntryState> = self
            .entries
            .iter()
            .map(|(&line, e)| MshrEntryState {
                line,
                waiters: e.waiters.clone(),
                write_requested: e.write_requested,
                prefetch_only: e.prefetch_only,
            })
            .collect();
        entries.sort_by_key(|e| e.line);
        MshrState { entries, peak_occupancy: self.peak_occupancy as u64, merges: self.merges }
    }

    /// Replaces the file's state with `state` (snapshot support).
    ///
    /// # Panics
    ///
    /// Panics when `state` holds more entries than this file's capacity —
    /// restores are gated by snapshot digests, so a mismatch is a
    /// programming error.
    pub fn import_state(&mut self, state: &MshrState) {
        assert!(
            state.entries.len() <= self.capacity,
            "MSHR state holds {} entries but the file has capacity {}",
            state.entries.len(),
            self.capacity
        );
        self.entries.clear();
        for e in &state.entries {
            self.entries.insert(
                e.line,
                MshrEntry {
                    waiters: e.waiters.clone(),
                    write_requested: e.write_requested,
                    prefetch_only: e.prefetch_only,
                },
            );
        }
        self.peak_occupancy = state.peak_occupancy as usize;
        self.merges = state.merges;
    }

    /// Completes the miss for `line_addr`, returning the waiters, whether the
    /// fill should be installed dirty, and whether the entry stayed
    /// prefetch-only. Returns `None` if no such miss is outstanding.
    pub fn complete(&mut self, line_addr: u64) -> Option<(Vec<u64>, bool, bool)> {
        self.entries.remove(&line_addr).map(|e| (e.waiters, e.write_requested, e.prefetch_only))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_complete_round_trip() {
        let mut m = MshrFile::new(4);
        assert!(m.allocate(0x100, 1, false, false).unwrap());
        assert!(m.contains(0x100));
        let (waiters, dirty, prefetch_only) = m.complete(0x100).unwrap();
        assert_eq!(waiters, vec![1]);
        assert!(!dirty);
        assert!(!prefetch_only);
        assert!(m.is_empty());
    }

    #[test]
    fn secondary_misses_merge() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(0x100, 1, false, false).unwrap());
        assert!(!m.allocate(0x100, 2, true, false).unwrap());
        assert_eq!(m.len(), 1);
        assert_eq!(m.merges(), 1);
        let (waiters, dirty, _) = m.complete(0x100).unwrap();
        assert_eq!(waiters, vec![1, 2]);
        assert!(dirty, "a merged write should make the fill dirty");
    }

    #[test]
    fn full_file_rejects_new_misses_but_accepts_merges() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100, 1, false, false).unwrap();
        assert_eq!(m.allocate(0x200, 2, false, false), Err(MshrError::Full));
        assert!(!m.allocate(0x100, 3, false, false).unwrap());
    }

    #[test]
    fn prefetch_only_flag_clears_on_demand_merge() {
        let mut m = MshrFile::new(2);
        m.allocate(0x300, 1, false, true).unwrap();
        m.allocate(0x300, 2, false, false).unwrap();
        let (_, _, prefetch_only) = m.complete(0x300).unwrap();
        assert!(!prefetch_only);
    }

    #[test]
    fn complete_unknown_address_is_none() {
        let mut m = MshrFile::new(2);
        assert!(m.complete(0xdead).is_none());
    }

    #[test]
    fn state_export_import_round_trips() {
        let mut m = MshrFile::new(8);
        m.allocate(0x300, 7, false, true).unwrap();
        m.allocate(0x100, 1, false, false).unwrap();
        m.allocate(0x100, 2, true, false).unwrap();
        m.allocate(0x200, 3, false, false).unwrap();
        m.complete(0x200).unwrap();

        let state = m.export_state();
        // Canonical ordering: sorted by line address.
        assert_eq!(state.entries.iter().map(|e| e.line).collect::<Vec<_>>(), vec![0x100, 0x300]);
        assert_eq!(state.peak_occupancy, 3);
        assert_eq!(state.merges, 1);

        let mut fresh = MshrFile::new(8);
        fresh.import_state(&state);
        assert_eq!(fresh.export_state(), state);
        let (waiters, dirty, _) = fresh.complete(0x100).unwrap();
        assert_eq!(waiters, vec![1, 2]);
        assert!(dirty);
        let (_, _, prefetch_only) = fresh.complete(0x300).unwrap();
        assert!(prefetch_only);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn state_import_rejects_overfull_image() {
        let mut big = MshrFile::new(4);
        for i in 0..3u64 {
            big.allocate(i * 64, i, false, false).unwrap();
        }
        let state = big.export_state();
        let mut small = MshrFile::new(2);
        small.import_state(&state);
    }

    #[test]
    fn peak_occupancy_tracks_maximum() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.allocate(i * 64, i, false, false).unwrap();
        }
        for i in 0..5u64 {
            m.complete(i * 64).unwrap();
        }
        assert_eq!(m.peak_occupancy(), 5);
        assert!(m.is_empty());
    }
}
