//! Cache replacement policies.
//!
//! Three policies from the paper's evaluation are provided: true LRU
//! (baseline, Table II), SRRIP and SHiP (Section VII-E / Figure 15). All of
//! them expose [`ReplacementPolicy::eviction_order`], the ordering that BARD
//! scans when looking for a low-cost dirty line — LRU→MRU for LRU, and
//! highest→lowest RRPV for the RRIP-based policies.

/// Which replacement policy to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
    /// Signature-based hit predictor layered on RRIP.
    Ship,
}

impl ReplacementKind {
    /// Builds a boxed policy instance for a cache of `sets` x `ways`.
    #[must_use]
    pub fn build(self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            Self::Lru => Box::new(Lru::new(sets, ways)),
            Self::Srrip => Box::new(Srrip::new(sets, ways)),
            Self::Ship => Box::new(Ship::new(sets, ways)),
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Lru => "LRU",
            Self::Srrip => "SRRIP",
            Self::Ship => "SHiP",
        }
    }
}

/// Plain-data image of a replacement policy's mutable state (snapshot
/// support). The variant must match the policy it is imported into; the
/// geometry (`sets * ways` vector lengths) is validated on import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplacementState {
    /// [`Lru`] state: the global stamp counter and per-way timestamps.
    Lru {
        /// Global monotonically increasing touch stamp.
        stamp: u64,
        /// Per-way last-use stamps (`sets * ways`).
        last_use: Vec<u64>,
    },
    /// [`Srrip`] state: per-way re-reference prediction values.
    Srrip {
        /// Per-way RRPVs (`sets * ways`).
        rrpv: Vec<u8>,
    },
    /// [`Ship`] state: RRPVs, per-line signatures and the SHCT.
    Ship {
        /// Per-way RRPVs (`sets * ways`).
        rrpv: Vec<u8>,
        /// Per-way fill signatures (`sets * ways`).
        line_sig: Vec<u16>,
        /// Signature history counter table.
        shct: Vec<u8>,
    },
}

/// Interface every replacement policy implements.
///
/// The cache calls `on_hit` / `on_insert` / `on_evict` to keep the policy
/// state up to date and `victim` / `eviction_order` to make decisions. Ways
/// holding invalid lines are handled by the cache itself and never reach the
/// policy.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Records a hit on `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize, signature: u16);
    /// Records a fill into `way` of `set`.
    fn on_insert(&mut self, set: usize, way: usize, signature: u16);
    /// Records the eviction of `way` of `set`; `reused` reports whether the
    /// line was hit at least once while resident (used by SHiP training).
    fn on_evict(&mut self, set: usize, way: usize, reused: bool);
    /// Chooses the victim way for `set` among `ways` valid ways.
    fn victim(&mut self, set: usize) -> usize;
    /// Writes all ways of `set` into `out`, most-evictable first (LRU→MRU or
    /// highest→lowest RRPV). Ties are broken by way index.
    fn eviction_order(&self, set: usize, out: &mut Vec<usize>);
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Exports the policy's mutable state (snapshot support).
    fn export_state(&self) -> ReplacementState;
    /// Replaces the policy's mutable state (snapshot support).
    ///
    /// # Panics
    ///
    /// Panics when the state variant or geometry does not match this policy —
    /// snapshot digests gate restores, so a mismatch here is a programming
    /// error, not a recoverable condition.
    fn import_state(&mut self, state: &ReplacementState);
}

/// True LRU: per-way timestamps updated on every touch.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize, // bard-lint: allow(S1) -- geometry fixed at construction
    stamp: u64,
    last_use: Vec<u64>,
}

impl Lru {
    /// Creates an LRU policy for `sets` x `ways`.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self { ways, stamp: 0, last_use: vec![0; sets * ways] }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.stamp += 1;
        let idx = self.idx(set, way);
        self.last_use[idx] = self.stamp;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize, _signature: u16) {
        self.touch(set, way);
    }

    fn on_insert(&mut self, set: usize, way: usize, _signature: u16) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _reused: bool) {}

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways).min_by_key(|w| self.last_use[base + w]).expect("ways > 0")
    }

    fn eviction_order(&self, set: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.ways);
        let base = set * self.ways;
        out.sort_by_key(|&w| (self.last_use[base + w], w));
    }

    fn name(&self) -> &'static str {
        "LRU"
    }

    fn export_state(&self) -> ReplacementState {
        ReplacementState::Lru { stamp: self.stamp, last_use: self.last_use.clone() }
    }

    fn import_state(&mut self, state: &ReplacementState) {
        match state {
            ReplacementState::Lru { stamp, last_use } => {
                assert_eq!(last_use.len(), self.last_use.len(), "LRU geometry mismatch");
                self.stamp = *stamp;
                self.last_use.clone_from(last_use);
            }
            other => panic!("cannot import {other:?} into an LRU policy"),
        }
    }
}

/// Maximum re-reference prediction value for a 2-bit RRPV.
const RRPV_MAX: u8 = 3;
/// RRPV assigned on insertion by SRRIP ("long" re-reference interval).
const RRPV_INSERT: u8 = 2;

/// Static RRIP with 2-bit re-reference prediction values.
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize, // bard-lint: allow(S1) -- geometry fixed at construction
    rrpv: Vec<u8>,
}

impl Srrip {
    /// Creates an SRRIP policy for `sets` x `ways`.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self { ways, rrpv: vec![RRPV_MAX; sets * ways] }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn victim_rrip(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(way) = (0..self.ways).find(|w| self.rrpv[base + w] == RRPV_MAX) {
                return way;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize, _signature: u16) {
        let idx = self.idx(set, way);
        self.rrpv[idx] = 0;
    }

    fn on_insert(&mut self, set: usize, way: usize, _signature: u16) {
        let idx = self.idx(set, way);
        self.rrpv[idx] = RRPV_INSERT;
    }

    fn on_evict(&mut self, _set: usize, _way: usize, _reused: bool) {}

    fn victim(&mut self, set: usize) -> usize {
        self.victim_rrip(set)
    }

    fn eviction_order(&self, set: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.ways);
        let base = set * self.ways;
        // Highest RRPV first (most evictable), ties by way index.
        out.sort_by_key(|&w| (std::cmp::Reverse(self.rrpv[base + w]), w));
    }

    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn export_state(&self) -> ReplacementState {
        ReplacementState::Srrip { rrpv: self.rrpv.clone() }
    }

    fn import_state(&mut self, state: &ReplacementState) {
        match state {
            ReplacementState::Srrip { rrpv } => {
                assert_eq!(rrpv.len(), self.rrpv.len(), "SRRIP geometry mismatch");
                self.rrpv.clone_from(rrpv);
            }
            other => panic!("cannot import {other:?} into an SRRIP policy"),
        }
    }
}

/// Number of entries in the SHiP signature history counter table.
const SHCT_ENTRIES: usize = 16 * 1024;
/// Saturating counter maximum for the SHCT.
const SHCT_MAX: u8 = 7;

/// SHiP: signature-based hit prediction on top of RRIP.
///
/// Each fill records the PC signature; on eviction without reuse the
/// signature's counter is decremented, on reuse it is incremented. Fills whose
/// signature predicts no reuse are inserted with the maximum RRPV.
#[derive(Debug, Clone)]
pub struct Ship {
    ways: usize, // bard-lint: allow(S1) -- geometry fixed at construction
    rrpv: Vec<u8>,
    line_sig: Vec<u16>,
    shct: Vec<u8>,
}

impl Ship {
    /// Creates a SHiP policy for `sets` x `ways`.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
            line_sig: vec![0; sets * ways],
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn shct_index(signature: u16) -> usize {
        signature as usize % SHCT_ENTRIES
    }
}

impl ReplacementPolicy for Ship {
    fn on_hit(&mut self, set: usize, way: usize, _signature: u16) {
        let idx = self.idx(set, way);
        self.rrpv[idx] = 0;
        let sig = self.line_sig[idx];
        let counter = &mut self.shct[Self::shct_index(sig)];
        *counter = (*counter + 1).min(SHCT_MAX);
    }

    fn on_insert(&mut self, set: usize, way: usize, signature: u16) {
        let idx = self.idx(set, way);
        self.line_sig[idx] = signature;
        let predicted_dead = self.shct[Self::shct_index(signature)] == 0;
        self.rrpv[idx] = if predicted_dead { RRPV_MAX } else { RRPV_INSERT };
    }

    fn on_evict(&mut self, set: usize, way: usize, reused: bool) {
        let idx = self.idx(set, way);
        let sig = self.line_sig[idx];
        if !reused {
            let counter = &mut self.shct[Self::shct_index(sig)];
            *counter = counter.saturating_sub(1);
        }
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(way) = (0..self.ways).find(|w| self.rrpv[base + w] == RRPV_MAX) {
                return way;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn eviction_order(&self, set: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.ways);
        let base = set * self.ways;
        out.sort_by_key(|&w| (std::cmp::Reverse(self.rrpv[base + w]), w));
    }

    fn name(&self) -> &'static str {
        "SHiP"
    }

    fn export_state(&self) -> ReplacementState {
        ReplacementState::Ship {
            rrpv: self.rrpv.clone(),
            line_sig: self.line_sig.clone(),
            shct: self.shct.clone(),
        }
    }

    fn import_state(&mut self, state: &ReplacementState) {
        match state {
            ReplacementState::Ship { rrpv, line_sig, shct } => {
                assert_eq!(rrpv.len(), self.rrpv.len(), "SHiP geometry mismatch");
                assert_eq!(shct.len(), self.shct.len(), "SHCT size mismatch");
                self.rrpv.clone_from(rrpv);
                self.line_sig.clone_from(line_sig);
                self.shct.clone_from(shct);
            }
            other => panic!("cannot import {other:?} into a SHiP policy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = Lru::new(1, 4);
        for way in 0..4 {
            p.on_insert(0, way, 0);
        }
        p.on_hit(0, 0, 0); // way 0 becomes MRU
        assert_eq!(p.victim(0), 1);
        let mut order = Vec::new();
        p.eviction_order(0, &mut order);
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn lru_eviction_order_is_lru_to_mru() {
        let mut p = Lru::new(2, 4);
        for way in [2, 0, 3, 1] {
            p.on_insert(1, way, 0);
        }
        let mut order = Vec::new();
        p.eviction_order(1, &mut order);
        assert_eq!(order, vec![2, 0, 3, 1]);
        // A different set is unaffected.
        p.eviction_order(0, &mut order);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn srrip_hits_promote_and_misses_age() {
        let mut p = Srrip::new(1, 4);
        for way in 0..4 {
            p.on_insert(0, way, 0);
        }
        p.on_hit(0, 2, 0);
        // All ways were inserted at RRPV=2; way 2 is now 0. The victim search
        // ages everyone until some way reaches 3, so way 0 (first in way
        // order) is the victim, not way 2.
        let v = p.victim(0);
        assert_ne!(v, 2);
        let mut order = Vec::new();
        p.eviction_order(0, &mut order);
        assert_eq!(*order.last().unwrap(), 2, "the hit way is the least evictable");
    }

    #[test]
    fn srrip_victim_prefers_rrpv_max() {
        let mut p = Srrip::new(1, 4);
        p.on_insert(0, 0, 0);
        p.on_insert(0, 1, 0);
        // Ways 2 and 3 never inserted: their RRPV stays at the max.
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn ship_learns_dead_signatures() {
        let mut p = Ship::new(1, 4);
        let dead_sig = 42;
        // Train: insert and evict the signature without reuse until the
        // counter saturates at zero.
        for _ in 0..4 {
            p.on_insert(0, 0, dead_sig);
            p.on_evict(0, 0, false);
        }
        // The next insert with this signature should be predicted dead and
        // placed at RRPV_MAX (immediately evictable).
        p.on_insert(0, 1, dead_sig);
        p.on_insert(0, 2, 7); // live signature
        let mut order = Vec::new();
        p.eviction_order(0, &mut order);
        assert_eq!(order[0], 0, "ways with RRPV_MAX lead the order");
        assert!(
            order.iter().position(|&w| w == 1).unwrap()
                < order.iter().position(|&w| w == 2).unwrap()
        );
    }

    #[test]
    fn ship_reused_signatures_are_kept_longer() {
        let mut p = Ship::new(1, 2);
        let live = 9;
        p.on_insert(0, 0, live);
        p.on_hit(0, 0, live);
        p.on_evict(0, 0, true);
        p.on_insert(0, 0, live);
        p.on_insert(0, 1, 1234);
        // Both inserted at RRPV_INSERT; neither is at max, so victim search
        // ages them equally and picks way 0 by index — just check it is valid.
        let v = p.victim(0);
        assert!(v < 2);
    }

    #[test]
    fn kind_builds_named_policies() {
        for (kind, name) in [
            (ReplacementKind::Lru, "LRU"),
            (ReplacementKind::Srrip, "SRRIP"),
            (ReplacementKind::Ship, "SHiP"),
        ] {
            let p = kind.build(4, 4);
            assert_eq!(p.name(), name);
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn state_export_import_round_trips_every_policy() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Ship] {
            let mut trained = kind.build(2, 4);
            for way in 0..4 {
                trained.on_insert(0, way, way as u16);
            }
            trained.on_hit(0, 2, 2);
            trained.on_evict(0, 1, false);
            let state = trained.export_state();
            let mut fresh = kind.build(2, 4);
            fresh.import_state(&state);
            assert_eq!(fresh.export_state(), state, "{}", trained.name());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            trained.eviction_order(0, &mut a);
            fresh.eviction_order(0, &mut b);
            assert_eq!(a, b, "{}: imported state must decide identically", trained.name());
        }
    }

    #[test]
    #[should_panic(expected = "cannot import")]
    fn mismatched_state_variant_is_rejected() {
        let mut lru = Lru::new(1, 4);
        lru.import_state(&ReplacementState::Srrip { rrpv: vec![0; 4] });
    }

    #[test]
    fn eviction_order_contains_every_way_exactly_once() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Ship] {
            let mut p = kind.build(2, 8);
            for way in 0..8 {
                p.on_insert(1, way, way as u16);
            }
            p.on_hit(1, 3, 3);
            let mut order = Vec::new();
            p.eviction_order(1, &mut order);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "{}", p.name());
        }
    }
}
