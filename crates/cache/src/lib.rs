//! # bard-cache — cache substrate for the BARD reproduction
//!
//! Generic set-associative cache structures used to build the three-level
//! hierarchy of the paper's baseline (Table II): L1D, L2 and a sliced LLC.
//!
//! The crate provides:
//!
//! * [`SetAssocCache`]: a set-associative cache with per-line dirty bits and
//!   explicit *primitives* (probe / evict / cleanse / fill-at-way) so that
//!   higher-level writeback policies — BARD-E/C/H, Eager Writeback, Virtual
//!   Write Queue — can be layered on top without the cache knowing about
//!   DRAM geometry,
//! * replacement policies: true [`Lru`], [`Srrip`] (2-bit RRPV) and
//!   [`Ship`] (signature-based hit prediction), all exposing the
//!   *eviction order* BARD scans (LRU→MRU, or highest→lowest RRPV),
//! * a [`MshrFile`] for tracking outstanding misses with request merging,
//! * simple prefetchers (IP-stride and next-line) standing in for the
//!   paper's Berti and SPP prefetchers,
//! * per-cache [`CacheStats`].
//!
//! ## Example
//!
//! ```
//! use bard_cache::{CacheConfig, SetAssocCache, ReplacementKind};
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::new(48 * 1024, 12, 64), ReplacementKind::Lru);
//! assert!(!l1.touch(0x1000, 0, false)); // cold miss
//! let fill = l1.fill(0x1000, false, 0);
//! assert!(fill.evicted.is_none());
//! assert!(l1.touch(0x1000, 0, false)); // now a hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod mshr;
pub mod prefetch;
pub mod replacement;
pub mod stats;

pub use block::{CacheLine, EvictedLine};
pub use cache::{
    CacheConfig, CacheState, FillResult, FusedProbe, ProbeCounters, ProbeKind, SetAssocCache,
};
pub use mshr::{MshrEntryState, MshrError, MshrFile, MshrState};
pub use prefetch::{
    IpStridePrefetcher, NextLinePrefetcher, Prefetcher, StrideEntryState, StrideTableState,
};
pub use replacement::{Lru, ReplacementKind, ReplacementPolicy, ReplacementState, Ship, Srrip};
pub use stats::CacheStats;
