//! A generic set-associative, write-back, write-allocate cache.
//!
//! The cache exposes two levels of API:
//!
//! * a convenience API ([`SetAssocCache::touch`], [`SetAssocCache::fill`])
//!   used for the private L1/L2 levels, where the built-in replacement policy
//!   decides the victim, and
//! * low-level primitives ([`SetAssocCache::eviction_order`],
//!   [`SetAssocCache::evict`], [`SetAssocCache::cleanse`],
//!   [`SetAssocCache::fill_at`]) used by the LLC wrapper in the `bard` crate
//!   so that bank-aware writeback policies (BARD-E/C/H) and the prior-work
//!   baselines (Eager Writeback, Virtual Write Queue) can override victim
//!   selection and perform proactive write-backs.

use crate::block::{CacheLine, EvictedLine};
use crate::replacement::{ReplacementKind, ReplacementPolicy, ReplacementState};
use crate::stats::CacheStats;

/// Which cache-probe implementation the system uses on the demand path.
///
/// Both produce bitwise-identical results (the `engine_parity` and
/// differential-stress suites pin this); they differ only in how much work a
/// miss costs. The fused path is the default because a clean miss — by far
/// the common case on the L2/LLC levels — is certified by a per-set presence
/// filter without scanning the tag array; the walk path is kept forever as
/// the executable reference the differential tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeKind {
    /// Reference implementation: every probe scans the set's tag array.
    Walk,
    /// Fused probes: the line tag and presence-filter bit are computed once
    /// per access and carried across the L1/L2/LLC levels; per-set filters
    /// certify clean misses without touching the tag array.
    #[default]
    Fused,
}

impl ProbeKind {
    /// Parses a probe-path name (`walk` or `fused`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognised name.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "walk" => Ok(Self::Walk),
            "fused" => Ok(Self::Fused),
            other => Err(other.to_string()),
        }
    }

    /// Reads the `BARD_PROBE` environment variable (`walk` or `fused`).
    /// Returns `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — silently falling back would make a
    /// probe-path comparison measure nothing.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        // bard-lint: allow(D1) -- sanctioned cosmetic-knob override, read once at config
        // construction (never during simulation) and pinned result-neutral by the probe
        // parity suites.
        match std::env::var("BARD_PROBE") {
            Ok(v) if v.is_empty() => None,
            Ok(v) => Some(
                Self::from_name(&v)
                    .unwrap_or_else(|v| panic!("BARD_PROBE='{v}' (expected walk|fused)")),
            ),
            Err(_) => None,
        }
    }

    /// The probe path's CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Walk => "walk",
            Self::Fused => "fused",
        }
    }
}

/// Per-address probe state computed once and shared by every level of a
/// fused cache walk: the line-aligned address (the tag every level compares
/// against) and the presence-filter bit it hashes to. All levels of one
/// hierarchy share a line size, so one computation serves all three probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedProbe {
    /// Line-aligned address.
    pub line_addr: u64,
    /// One-hot presence-filter mask for this line.
    pub mask: u64,
}

impl FusedProbe {
    /// Precomputes the probe state for a line-aligned address.
    #[must_use]
    pub fn new(line_addr: u64) -> Self {
        Self { line_addr, mask: filter_mask(line_addr) }
    }
}

/// The presence-filter bit a line address hashes to. A Fibonacci-hash
/// multiply spreads line addresses (whose low bits repeat per set) over the
/// 64 filter bits; the top six bits of the product select the bit.
#[inline]
#[must_use]
fn filter_bit(line_addr: u64) -> u32 {
    (line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as u32
}

/// The presence-filter mask of a line address (`1 << filter_bit`).
#[inline]
#[must_use]
fn filter_mask(line_addr: u64) -> u64 {
    1u64 << filter_bit(line_addr)
}

/// Interior-mutable twin of [`ProbeCounters`]: probes take `&self`, so the
/// hot-path tallies live in `Cell`s (the cache is owned by one simulation
/// thread; nothing shares it).
#[derive(Debug, Default)]
struct ProbeCounterCells {
    set_scans: std::cell::Cell<u64>,
    filter_skips: std::cell::Cell<u64>,
    filter_passes: std::cell::Cell<u64>,
}

impl ProbeCounterCells {
    fn snapshot(&self) -> ProbeCounters {
        ProbeCounters {
            set_scans: self.set_scans.get(),
            filter_skips: self.filter_skips.get(),
            filter_passes: self.filter_passes.get(),
        }
    }
}

/// Hot-path probe counters (never serialized into artifacts; printed by the
/// `BARD_PERF_COUNTERS=1` one-line summary so lever impact is measurable
/// without an external profiler).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Tag-array set scans performed.
    pub set_scans: u64,
    /// Probes resolved by the presence filter without a scan (certified
    /// clean misses).
    pub filter_skips: u64,
    /// Probes whose filter bit was set and fell through to a scan.
    pub filter_passes: u64,
}

impl ProbeCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &Self) {
        self.set_scans += other.set_scans;
        self.filter_skips += other.filter_skips;
        self.filter_passes += other.filter_passes;
    }
}

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a configuration and checks it is internally consistent.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not describe a power-of-two number of sets.
    #[must_use]
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let cfg = Self { size_bytes, ways, line_bytes };
        assert!(cfg.sets().is_power_of_two(), "number of sets must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        cfg
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Plain-data image of a cache's semantic state (snapshot support):
/// the line array, per-way reuse bits, the replacement-policy state and the
/// statistics counters. The derived acceleration structures (dense tag
/// array, presence filters, cached filter bits) are **not** part of the
/// image — [`SetAssocCache::import_state`] rebuilds them from the lines, so
/// a restored cache is field-for-field identical to the captured one.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheState {
    /// Every way of every set, set-major (`sets * ways` entries).
    pub lines: Vec<CacheLine>,
    /// Per-way reuse bits (SHiP training input), aligned with `lines`.
    pub reused: Vec<bool>,
    /// Replacement-policy state.
    pub replacement: ReplacementState,
    /// Statistics counters.
    pub stats: CacheStats,
}

/// Result of a [`SetAssocCache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillResult {
    /// The way the new line was placed in.
    pub way: usize,
    /// The line that had to be evicted to make room, if any.
    pub evicted: Option<EvictedLine>,
}

/// Tag-array sentinel for an invalid way. Line addresses are line-aligned
/// (line sizes are powers of two > 1), so all-ones can never collide with a
/// real tag.
const TAG_INVALID: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache.
#[derive(Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    line_shift: u32, // bard-lint: allow(S1) -- derived from config geometry at construction
    set_mask: u64,   // bard-lint: allow(S1) -- derived from config geometry at construction
    lines: Vec<CacheLine>,
    /// Dense tag array mirroring `lines` (`TAG_INVALID` for invalid ways):
    /// the lookup hot path scans 8 contiguous bytes per way instead of a
    /// 24-byte `CacheLine`, which matters because every simulated memory
    /// access probes up to three cache levels.
    tags: Vec<u64>,
    /// Per-set presence filter: bit `hash(line)` is set for every resident
    /// line of the set (conservative — a set bit proves nothing, a clear bit
    /// certifies absence). Maintained unconditionally on fill/evict (a few
    /// cycles each); consulted only by the fused probe path.
    filters: Vec<u64>,
    /// Per-way cached [`filter_bit`] of the resident tag, so the eviction
    /// rebuild is `ways` shift-ORs instead of `ways` rehashes.
    filter_bits: Vec<u8>,
    reused: Vec<bool>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
    // bard-lint: allow(S1) -- perf-observability cells scraped through the registry probe;
    // deliberately not architectural state (snapshot parity is over model state only).
    counters: ProbeCounterCells,
}

impl SetAssocCache {
    /// Creates a cache with the given geometry and replacement policy.
    #[must_use]
    pub fn new(config: CacheConfig, replacement: ReplacementKind) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets as u64) - 1,
            lines: vec![CacheLine::empty(); sets * config.ways],
            tags: vec![TAG_INVALID; sets * config.ways],
            filters: vec![0; sets],
            filter_bits: vec![0; sets * config.ways],
            reused: vec![false; sets * config.ways],
            policy: replacement.build(sets, config.ways),
            stats: CacheStats::default(),
            counters: ProbeCounterCells::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.config.ways
    }

    /// Name of the replacement policy in use.
    #[must_use]
    pub fn replacement_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Exports the cache's semantic state (snapshot support). The derived
    /// tag array and presence filters are not exported; they are rebuilt on
    /// import.
    #[must_use]
    pub fn export_state(&self) -> CacheState {
        CacheState {
            lines: self.lines.clone(),
            reused: self.reused.clone(),
            replacement: self.policy.export_state(),
            stats: self.stats,
        }
    }

    /// Replaces the cache's semantic state with `state` and rebuilds every
    /// derived structure (tags, presence filters, cached filter bits) from
    /// the imported lines (snapshot support).
    ///
    /// # Panics
    ///
    /// Panics when the state's geometry or replacement-policy variant does
    /// not match this cache — restores are gated by snapshot digests, so a
    /// mismatch is a programming error.
    pub fn import_state(&mut self, state: &CacheState) {
        assert_eq!(state.lines.len(), self.lines.len(), "cache geometry mismatch");
        assert_eq!(state.reused.len(), self.reused.len(), "cache geometry mismatch");
        self.lines.clone_from(&state.lines);
        self.reused.clone_from(&state.reused);
        self.policy.import_state(&state.replacement);
        self.stats = state.stats;
        for set in 0..self.sets {
            let base = set * self.config.ways;
            let mut filter = 0u64;
            for way in 0..self.config.ways {
                let idx = base + way;
                if self.lines[idx].valid {
                    let bit = filter_bit(self.lines[idx].addr);
                    self.tags[idx] = self.lines[idx].addr;
                    self.filter_bits[idx] = bit as u8;
                    filter |= 1u64 << bit;
                } else {
                    self.tags[idx] = TAG_INVALID;
                    self.filter_bits[idx] = 0;
                }
            }
            self.filters[set] = filter;
        }
    }

    /// Clears the statistics counters while keeping cache contents
    /// (used at the end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Set index for an address.
    #[must_use]
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Line-aligned address.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.line_shift) - 1)
    }

    /// Read-only view of the ways of a set.
    #[must_use]
    pub fn lines_in_set(&self, set: usize) -> &[CacheLine] {
        let base = set * self.config.ways;
        &self.lines[base..base + self.config.ways]
    }

    /// Looks up `addr` without changing any state. Returns the way on a hit.
    #[must_use]
    pub fn probe(&self, addr: u64) -> Option<usize> {
        self.scan(self.set_of(addr), self.line_addr(addr))
    }

    /// [`SetAssocCache::probe`] through the per-set presence filter: when
    /// the line's filter bit is clear, the miss is certified without
    /// scanning the tag array. Returns exactly what `probe` would — a clear
    /// bit proves absence, a set bit falls through to the scan.
    #[must_use]
    pub fn probe_fused(&self, probe: &FusedProbe) -> Option<usize> {
        debug_assert_eq!(
            probe.line_addr,
            self.line_addr(probe.line_addr),
            "fused probes must carry a line-aligned address"
        );
        let set = self.set_of(probe.line_addr);
        if self.filters[set] & probe.mask == 0 {
            self.counters.filter_skips.set(self.counters.filter_skips.get() + 1);
            return None;
        }
        self.counters.filter_passes.set(self.counters.filter_passes.get() + 1);
        self.scan(set, probe.line_addr)
    }

    /// The tag-array scan both probe paths share.
    fn scan(&self, set: usize, line_addr: u64) -> Option<usize> {
        self.counters.set_scans.set(self.counters.set_scans.get() + 1);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].iter().position(|&t| t == line_addr)
    }

    /// Demand access: on a hit, recency state is updated, the dirty bit is set
    /// for writes, and `true` is returned. On a miss, returns `false` and the
    /// caller is expected to fetch the line and call [`fill`](Self::fill) (or
    /// [`fill_at`](Self::fill_at)).
    pub fn touch(&mut self, addr: u64, signature: u16, is_write: bool) -> bool {
        let way = self.probe(addr);
        self.touch_outcome(addr, way, signature, is_write)
    }

    /// [`SetAssocCache::touch`] through the presence filter (see
    /// [`SetAssocCache::probe_fused`]). The demand-miss path updates only
    /// the load/store counters, so a filter-certified miss leaves the cache
    /// in exactly the state a scanned miss would.
    pub fn touch_fused(&mut self, probe: &FusedProbe, signature: u16, is_write: bool) -> bool {
        let way = self.probe_fused(probe);
        self.touch_outcome(probe.line_addr, way, signature, is_write)
    }

    /// Applies the statistics and hit-path state changes of a demand access
    /// whose probe already resolved to `way`.
    fn touch_outcome(
        &mut self,
        addr: u64,
        way: Option<usize>,
        signature: u16,
        is_write: bool,
    ) -> bool {
        if is_write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let Some(way) = way else { return false };
        if is_write {
            self.stats.stores_hits += 1;
        } else {
            self.stats.load_hits += 1;
        }
        let set = self.set_of(addr);
        let idx = set * self.config.ways + way;
        if is_write {
            self.lines[idx].dirty = true;
        }
        if self.lines[idx].prefetched {
            self.lines[idx].prefetched = false;
            self.stats.prefetch_useful += 1;
        }
        self.reused[idx] = true;
        self.policy.on_hit(set, way, signature);
        true
    }

    /// Snapshot of the hot-path probe counters.
    #[must_use]
    pub fn probe_counters(&self) -> ProbeCounters {
        self.counters.snapshot()
    }

    /// Write-back arriving from an inner cache level. If the line is present
    /// it is marked dirty (and recency updated); otherwise the caller should
    /// allocate it with [`fill`](Self::fill) with `dirty = true`.
    ///
    /// Returns `true` if the write-back hit.
    pub fn writeback_access(&mut self, addr: u64) -> bool {
        self.stats.writeback_accesses += 1;
        let set = self.set_of(addr);
        if let Some(way) = self.probe(addr) {
            let idx = set * self.config.ways + way;
            self.lines[idx].dirty = true;
            // Write-backs do not update the replacement state: they are not
            // demand references (matches ChampSim's default behaviour).
            true
        } else {
            false
        }
    }

    /// Chooses the victim way for `addr`'s set: an invalid way if one exists,
    /// otherwise the replacement policy's choice.
    pub fn victim_way(&mut self, addr: u64) -> usize {
        let set = self.set_of(addr);
        let base = set * self.config.ways;
        if let Some(way) =
            self.tags[base..base + self.config.ways].iter().position(|&t| t == TAG_INVALID)
        {
            return way;
        }
        self.policy.victim(set)
    }

    /// Fills `addr` into the set, evicting the policy victim if needed.
    pub fn fill(&mut self, addr: u64, dirty: bool, signature: u16) -> FillResult {
        let way = self.victim_way(addr);
        let set = self.set_of(addr);
        let evicted = self.evict(set, way);
        self.fill_at(set, way, addr, dirty, signature);
        FillResult { way, evicted }
    }

    /// Fills a line brought in by a prefetch.
    pub fn fill_prefetch(&mut self, addr: u64, signature: u16) -> FillResult {
        let result = self.fill(addr, false, signature);
        let set = self.set_of(addr);
        let idx = set * self.config.ways + result.way;
        self.lines[idx].prefetched = true;
        self.stats.prefetch_fills += 1;
        result
    }

    /// Ways of `set` ordered most-evictable first according to the
    /// replacement policy. This is the order BARD scans for low-cost dirty
    /// lines (LRU→MRU, or highest→lowest RRPV).
    #[must_use]
    pub fn eviction_order(&mut self, set: usize) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.config.ways);
        self.eviction_order_into(set, &mut order);
        order
    }

    /// [`SetAssocCache::eviction_order`] into a caller-owned buffer
    /// (cleared first), avoiding the per-call allocation on hot paths.
    pub fn eviction_order_into(&mut self, set: usize, out: &mut Vec<usize>) {
        self.policy.eviction_order(set, out);
    }

    /// Removes the line in `way` of `set`. Returns the evicted line if it was
    /// valid.
    pub fn evict(&mut self, set: usize, way: usize) -> Option<EvictedLine> {
        let idx = set * self.config.ways + way;
        if !self.lines[idx].valid {
            return None;
        }
        let line = self.lines[idx];
        self.policy.on_evict(set, way, self.reused[idx]);
        self.lines[idx] = CacheLine::empty();
        self.tags[idx] = TAG_INVALID;
        self.reused[idx] = false;
        // Rebuild the set's presence filter without the departed tag: at
        // most `ways` rehashes, and only on the (rare) eviction path.
        // Rebuild the set's presence filter without the departed tag from
        // the stored per-way bit indexes: `ways` shift-ORs, no rehashing.
        let base = set * self.config.ways;
        let mut filter = 0u64;
        for w in base..base + self.config.ways {
            if self.tags[w] != TAG_INVALID {
                filter |= 1u64 << self.filter_bits[w];
            }
        }
        self.filters[set] = filter;
        if line.dirty {
            self.stats.dirty_evictions += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        Some(EvictedLine { addr: line.addr, dirty: line.dirty })
    }

    /// Clears the dirty bit of `way` in `set` without evicting the line
    /// (a proactive write-back / "cleanse"). Returns the line address if the
    /// line was valid and dirty; the caller is responsible for sending the
    /// write-back to the next level.
    pub fn cleanse(&mut self, set: usize, way: usize) -> Option<u64> {
        let idx = set * self.config.ways + way;
        if self.lines[idx].valid && self.lines[idx].dirty {
            self.lines[idx].dirty = false;
            self.stats.cleanses += 1;
            Some(self.lines[idx].addr)
        } else {
            None
        }
    }

    /// Installs `addr` into a specific way (which must have been emptied by
    /// [`evict`](Self::evict) or be invalid).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the target way still holds a valid line.
    pub fn fill_at(&mut self, set: usize, way: usize, addr: u64, dirty: bool, signature: u16) {
        let idx = set * self.config.ways + way;
        debug_assert!(!self.lines[idx].valid, "fill_at target must be empty");
        self.lines[idx] = CacheLine::filled(self.line_addr(addr), dirty, signature);
        self.tags[idx] = self.line_addr(addr);
        let bit = filter_bit(self.line_addr(addr));
        self.filter_bits[idx] = bit as u8;
        self.filters[set] |= 1u64 << bit;
        self.reused[idx] = false;
        self.stats.fills += 1;
        self.policy.on_insert(set, way, signature);
    }

    /// Marks a hit on a specific way without the address lookup (used by the
    /// LLC wrapper after it has already located the line).
    pub fn promote(&mut self, set: usize, way: usize, signature: u16) {
        let idx = set * self.config.ways + way;
        if self.lines[idx].valid {
            self.reused[idx] = true;
            self.policy.on_hit(set, way, signature);
        }
    }

    /// Iterates over all valid, dirty lines in the cache, calling `f` with
    /// `(set, way, line)`. Used by the Virtual Write Queue baseline, which is
    /// allowed to search the whole LLC for same-row dirty lines.
    pub fn for_each_dirty(&self, mut f: impl FnMut(usize, usize, &CacheLine)) {
        for set in 0..self.sets {
            let base = set * self.config.ways;
            for way in 0..self.config.ways {
                let line = &self.lines[base + way];
                if line.valid && line.dirty {
                    f(set, way, line);
                }
            }
        }
    }

    /// Number of valid lines currently resident (test / debug helper).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Number of dirty lines currently resident.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 4 ways x 64 B = 1 KiB
        SetAssocCache::new(CacheConfig::new(1024, 4, 64), ReplacementKind::Lru)
    }

    #[test]
    fn state_round_trip_rebuilds_derived_structures() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Ship] {
            let mut warmed = SetAssocCache::new(CacheConfig::new(1024, 4, 64), kind);
            for i in 0..200u64 {
                let addr = (i * 192) % 4096 + (i % 7) * 4096;
                if !warmed.touch(addr, (i % 13) as u16, i % 3 == 0) {
                    warmed.fill(addr, i % 3 == 0, (i % 13) as u16);
                }
            }
            let state = warmed.export_state();
            let mut restored = SetAssocCache::new(CacheConfig::new(1024, 4, 64), kind);
            restored.import_state(&state);
            assert_eq!(restored.export_state(), state);
            // The rebuilt filters/tags must answer probes identically,
            // through both probe paths.
            for i in 0..300u64 {
                let addr = (i * 64) % (8 * 4096);
                assert_eq!(warmed.probe(addr), restored.probe(addr));
                let probe = FusedProbe::new(warmed.line_addr(addr));
                assert_eq!(warmed.probe_fused(&probe), restored.probe_fused(&probe));
            }
            // And future decisions must coincide.
            for set in 0..4 {
                assert_eq!(warmed.eviction_order(set), restored.eviction_order(set));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cache geometry mismatch")]
    fn state_import_rejects_wrong_geometry() {
        let donor = small_cache();
        let state = donor.export_state();
        let mut wrong = SetAssocCache::new(CacheConfig::new(2048, 4, 64), ReplacementKind::Lru);
        wrong.import_state(&state);
    }

    #[test]
    fn config_computes_sets() {
        let c = CacheConfig::new(16 * 1024 * 1024, 16, 64);
        assert_eq!(c.sets(), 16 * 1024);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert!(!c.touch(0x1000, 1, false));
        let r = c.fill(0x1000, false, 1);
        assert!(r.evicted.is_none());
        assert!(c.touch(0x1000, 1, false));
        assert_eq!(c.stats().loads, 2);
        assert_eq!(c.stats().load_hits, 1);
    }

    #[test]
    fn store_hit_sets_dirty_bit() {
        let mut c = small_cache();
        c.fill(0x2000, false, 0);
        assert!(c.touch(0x2000, 0, true));
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn filling_a_full_set_evicts_lru() {
        let mut c = small_cache();
        // Addresses mapping to the same set: stride = sets * line = 256 B.
        let addrs: Vec<u64> = (0..5).map(|i| 0x10_000 + i * 256).collect();
        for a in &addrs[..4] {
            c.fill(*a, false, 0);
        }
        c.touch(addrs[0], 0, false); // make way of addrs[0] MRU
        let r = c.fill(addrs[4], false, 0);
        let evicted = r.evicted.expect("set was full");
        assert_eq!(evicted.addr, addrs[1], "LRU line should be evicted");
        assert!(!evicted.dirty);
    }

    #[test]
    fn dirty_eviction_reports_dirty_line() {
        let mut c = small_cache();
        let addrs: Vec<u64> = (0..5).map(|i| 0x20_000 + i * 256).collect();
        c.fill(addrs[0], false, 0);
        c.touch(addrs[0], 0, true); // dirty it
        for a in &addrs[1..4] {
            c.fill(*a, false, 0);
        }
        let r = c.fill(addrs[4], false, 0);
        let evicted = r.evicted.expect("set was full");
        assert_eq!(evicted.addr, addrs[0]);
        assert!(evicted.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn cleanse_clears_dirty_without_eviction() {
        let mut c = small_cache();
        c.fill(0x3000, true, 0);
        let set = c.set_of(0x3000);
        let way = c.probe(0x3000).unwrap();
        assert_eq!(c.cleanse(set, way), Some(0x3000));
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.occupancy(), 1);
        // A second cleanse is a no-op.
        assert_eq!(c.cleanse(set, way), None);
        assert_eq!(c.stats().cleanses, 1);
    }

    #[test]
    fn writeback_access_marks_existing_line_dirty() {
        let mut c = small_cache();
        c.fill(0x4000, false, 0);
        assert!(c.writeback_access(0x4000));
        assert_eq!(c.dirty_count(), 1);
        assert!(!c.writeback_access(0x5000));
    }

    #[test]
    fn prefetch_fill_and_useful_tracking() {
        let mut c = small_cache();
        c.fill_prefetch(0x6000, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.touch(0x6000, 0, false));
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn eviction_order_matches_victim() {
        let mut c = small_cache();
        let addrs: Vec<u64> = (0..4).map(|i| 0x50_000 + i * 256).collect();
        for a in &addrs {
            c.fill(*a, false, 0);
        }
        c.touch(addrs[2], 0, false);
        let set = c.set_of(addrs[0]);
        let order = c.eviction_order(set);
        let victim = c.victim_way(addrs[0]);
        assert_eq!(order[0], victim);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn for_each_dirty_visits_only_dirty_lines() {
        let mut c = small_cache();
        c.fill(0x100, true, 0);
        c.fill(0x200, false, 0);
        c.fill(0x300, true, 0);
        let mut seen = Vec::new();
        c.for_each_dirty(|_, _, line| seen.push(line.addr));
        seen.sort_unstable();
        assert_eq!(seen, vec![0x100, 0x300]);
    }

    #[test]
    fn probe_kind_defaults_to_fused_and_parses_names() {
        assert_eq!(ProbeKind::default(), ProbeKind::Fused);
        assert_eq!(ProbeKind::from_name("walk"), Ok(ProbeKind::Walk));
        assert_eq!(ProbeKind::from_name("fused"), Ok(ProbeKind::Fused));
        assert!(ProbeKind::from_name("psychic").is_err());
        assert_eq!(ProbeKind::Walk.name(), "walk");
        assert_eq!(ProbeKind::Fused.name(), "fused");
    }

    /// The fused probe must agree with the reference walk probe on every
    /// address, through fills, demand hits and evictions.
    #[test]
    fn fused_probe_matches_walk_probe() {
        let mut c = small_cache();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut fused_probes = 0u64;
        for _ in 0..5_000 {
            // xorshift64 — deterministic, no external RNG.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = (state % 4096) * 64;
            let probe = FusedProbe::new(c.line_addr(addr));
            assert_eq!(c.probe(addr), c.probe_fused(&probe), "addr {addr:#x}");
            fused_probes += 1;
            let walk_hit = c.touch(addr, 0, state & 1 == 0);
            let fused_hit = c.touch_fused(&probe, 0, state & 1 == 0);
            fused_probes += 1;
            assert_eq!(walk_hit, fused_hit, "a hit stays a hit on an immediate re-touch");
            if !walk_hit {
                c.fill(addr, false, 0);
                assert_eq!(c.probe(addr), c.probe_fused(&probe));
                fused_probes += 1;
            }
        }
        let counters = c.probe_counters();
        assert!(counters.set_scans > 0);
        assert!(
            counters.filter_skips > 0,
            "evictions must clear filter bits so some misses are certified"
        );
        assert_eq!(
            counters.filter_skips + counters.filter_passes,
            fused_probes,
            "every fused probe either skips or passes the filter"
        );
    }

    #[test]
    fn filter_certifies_cold_misses_without_scanning() {
        let c = small_cache();
        let probe = FusedProbe::new(0x7000);
        assert_eq!(c.probe_fused(&probe), None);
        let counters = c.probe_counters();
        assert_eq!(counters.filter_skips, 1);
        assert_eq!(counters.set_scans, 0, "an empty set must not be scanned");
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..1_000u64 {
            let addr = i * 64;
            if !c.touch(addr, 0, i % 3 == 0) {
                c.fill(addr, i % 3 == 0, 0);
            }
        }
        assert!(c.occupancy() <= 16);
    }
}
